//! 1D data-mapping parallel sparse LU (§4.2, §5.1 of the paper).
//!
//! All submatrices of a column block live on one processor. Two execution
//! strategies are provided:
//!
//! * [`Strategy1d::ComputeAhead`] — block-cyclic mapping with the Fig. 10
//!   compute-ahead loop: the owner of block `k+1` performs
//!   `Update(k, k+1)` and `Factor(k+1)` *before* the remaining
//!   `Update(k, j)` tasks so the next pivot block is broadcast as early
//!   as possible;
//! * [`Strategy1d::GraphScheduled`] — RAPID-style execution: a
//!   communication-aware static schedule (from
//!   [`splu_sched::graph_schedule`]) fixes both the column-block mapping
//!   and each processor's task order; the runtime then simply replays its
//!   order, blocking on tag-matched receives (the asynchronous, zero-copy
//!   message protocol that RAPID's RMA transport provides on the T3D/T3E).
//!
//! Both strategies produce **bitwise-identical factors** to the
//! sequential code: same pivot rule, same per-block arithmetic order
//! (update stages of a column block are serialized by the task-graph
//! chain property).
//!
//! The factored panels are gathered back to the caller for the triangular
//! solves; per-processor peak memory and communication volume are
//! reported for the §5.2 space-complexity comparison.

use crate::scratch::FactorScratch;
use crate::seq::{factor_block_opts, update_block_with_panel, FactorStats, PanelRef};
use crate::storage::BlockMatrix;
use splu_machine::{run_machine, run_machine_jittered, run_machine_traced, Message, ProcCtx};
use splu_probe::Collector;
use splu_sched::{ca_schedule, graph_schedule, Schedule, TaskGraph, TaskKind};
use splu_symbolic::BlockPattern;
use std::sync::Arc;

/// Execution strategy for the 1D code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy1d {
    /// Block-cyclic mapping + compute-ahead ordering (Fig. 10).
    ComputeAhead,
    /// RAPID-style graph-scheduled mapping and ordering, planned with the
    /// given machine model.
    GraphScheduled(splu_machine::MachineModel),
}

/// Result of a parallel 1D factorization.
pub struct Par1dResult {
    /// Reassembled factored storage (host-side), ready for the solvers.
    pub blocks: BlockMatrix,
    /// Per-block pivot sequences.
    pub pivots: Vec<Vec<u32>>,
    /// Merged statistics over all processors.
    pub stats: FactorStats,
    /// Wall-clock seconds of the parallel section.
    pub elapsed: f64,
    /// Total (messages, bytes) sent.
    pub comm: (u64, u64),
    /// Per-processor peak parked-message bytes.
    pub peak_buffer_bytes: Vec<u64>,
    /// Per-processor busy seconds (time inside Factor/Update tasks).
    pub busy_secs: Vec<f64>,
}

const TAG_PANEL: u64 = 1 << 40;

fn panel_tag(k: usize) -> u64 {
    TAG_PANEL | k as u64
}

/// Pack a factored column block into a message: ints = pivot sequence,
/// floats = diag panel ++ L panel. The payload vectors come from the
/// runtime's recycling pool, so steady-state panel traffic reuses the
/// allocations of already-consumed messages.
fn pack_panel(ctx: &mut ProcCtx, m: &BlockMatrix, k: usize, piv: &[u32]) -> Message {
    let cb = &m.cols[k];
    let mut floats = ctx.floats_buf();
    floats.reserve(cb.diag.len() + cb.lpanel.len());
    floats.extend_from_slice(&cb.diag);
    floats.extend_from_slice(&cb.lpanel);
    let mut ints = ctx.ints_buf();
    ints.extend_from_slice(piv);
    Message::new(panel_tag(k), ints, floats)
}

/// A received panel together with owned copies of its block metadata
/// (so a `PanelRef` can be formed without borrowing the block matrix).
struct RecvPanel {
    msg: Message,
    lrows: Arc<Vec<u32>>,
    lsegs: Vec<crate::storage::LSeg>,
    w: usize,
}

impl RecvPanel {
    fn new(m: &BlockMatrix, k: usize, msg: Message) -> Self {
        let cb = &m.cols[k];
        Self {
            msg,
            lrows: cb.lrows.clone(),
            lsegs: cb.lsegs.clone(),
            w: cb.w as usize,
        }
    }

    fn panel(&self) -> PanelRef<'_> {
        let dlen = self.w * self.w;
        PanelRef {
            diag: &self.msg.floats[..dlen],
            lpanel: &self.msg.floats[dlen..],
            lrows: &self.lrows,
            lsegs: &self.lsegs,
            w: self.w,
        }
    }
}

/// Run the 1D parallel factorization on `nprocs` simulated processors.
///
/// `a` must already be preprocessed (zero-free diagonal, ordered); use
/// [`crate::pipeline::SparseLuSolver`] for the full pipeline.
pub fn factor_par1d(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    nprocs: usize,
    strategy: Strategy1d,
) -> Par1dResult {
    factor_par1d_opts(a, pattern, nprocs, strategy, 1.0)
}

/// 1D factorization with threshold pivoting (`threshold = 1.0` is classic
/// partial pivoting).
pub fn factor_par1d_opts(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    nprocs: usize,
    strategy: Strategy1d,
    threshold: f64,
) -> Par1dResult {
    let graph = TaskGraph::build(&pattern);
    let schedule = match strategy {
        Strategy1d::ComputeAhead => ca_schedule(&graph, nprocs),
        Strategy1d::GraphScheduled(model) => graph_schedule(&graph, nprocs, &model),
    };
    factor_with_schedule(a, pattern, &graph, &schedule, threshold)
}

/// Panic-free [`factor_par1d_opts`]: a numerically singular input
/// surfaces as `Err(SolverError::ZeroPivot)` instead of poisoning the
/// thread pool and unwinding through the caller. Any non-numeric panic
/// still propagates unchanged.
pub fn factor_par1d_checked(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    nprocs: usize,
    strategy: Strategy1d,
    threshold: f64,
) -> Result<Par1dResult, crate::error::SolverError> {
    crate::error::catch_solver_panic(|| factor_par1d_opts(a, pattern, nprocs, strategy, threshold))
}

/// Like [`factor_par1d_opts`], but recording a flight-recorder timeline
/// per processor into `collector` (`panel-factor`/`update` spans plus
/// the runtime's communication marks).
pub fn factor_par1d_traced(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    nprocs: usize,
    strategy: Strategy1d,
    threshold: f64,
    collector: &Collector,
) -> Par1dResult {
    let graph = TaskGraph::build(&pattern);
    let schedule = match strategy {
        Strategy1d::ComputeAhead => ca_schedule(&graph, nprocs),
        Strategy1d::GraphScheduled(model) => graph_schedule(&graph, nprocs, &model),
    };
    factor_with_schedule_impl(
        a,
        pattern,
        &graph,
        &schedule,
        threshold,
        Some(collector),
        None,
    )
}

/// [`factor_par1d_opts`] under the runtime's delivery-jitter test mode:
/// message receive interleaving is scrambled by a deterministic stream
/// seeded with `seed`. Factors must come out bitwise identical — the
/// pipelined code orders arithmetic by its schedule, not by arrival.
pub fn factor_par1d_jittered(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    nprocs: usize,
    strategy: Strategy1d,
    threshold: f64,
    seed: u64,
) -> Par1dResult {
    let graph = TaskGraph::build(&pattern);
    let schedule = match strategy {
        Strategy1d::ComputeAhead => ca_schedule(&graph, nprocs),
        Strategy1d::GraphScheduled(model) => graph_schedule(&graph, nprocs, &model),
    };
    factor_with_schedule_impl(a, pattern, &graph, &schedule, threshold, None, Some(seed))
}

/// Execute an explicit (mapping, order) schedule.
pub fn factor_with_schedule(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    graph: &TaskGraph,
    schedule: &Schedule,
    threshold: f64,
) -> Par1dResult {
    factor_with_schedule_impl(a, pattern, graph, schedule, threshold, None, None)
}

fn factor_with_schedule_impl(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    graph: &TaskGraph,
    schedule: &Schedule,
    threshold: f64,
    collector: Option<&Collector>,
    jitter_seed: Option<u64>,
) -> Par1dResult {
    schedule.validate(graph);
    let nprocs = schedule.nprocs();
    let nb = pattern.nblocks();

    // block → owner processor (from the schedule's owner-computes mapping)
    let mut owner = vec![u32::MAX; nb];
    for (t, &p) in schedule.proc_of.iter().enumerate() {
        let b = graph.owner_block[t] as usize;
        debug_assert!(owner[b] == u32::MAX || owner[b] == p);
        owner[b] = p;
    }
    // destination set of each Factor(k)'s panel: owners of Update(k, j)
    let mut panel_dests: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (t, kind) in graph.tasks.iter().enumerate() {
        if let TaskKind::Update(k, _) = kind {
            let p = schedule.proc_of[t] as usize;
            let d = &mut panel_dests[*k as usize];
            if !d.contains(&p) {
                d.push(p);
            }
        }
    }

    let t0 = std::time::Instant::now();
    type RankOut = (
        Vec<(usize, crate::storage::ColBlock)>,
        Vec<(usize, Vec<u32>)>,
        FactorStats,
        u64,
        f64,
    );
    let spmd = |mut ctx: ProcCtx| {
        // Each rank allocates only its owned column blocks' panels; the
        // shared pattern supplies all metadata.
        let mut m =
            BlockMatrix::from_csc_filtered(a, pattern.clone(), |b| owner[b] as usize == ctx.rank);
        let mut stats = FactorStats::default();
        let mut scratch = FactorScratch::new();
        let mut pivots: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut busy = 0.0f64;
        // cache of received panels by block id
        let mut received: Vec<Option<RecvPanel>> = (0..nb).map(|_| None).collect();
        // remaining local uses of each panel: once the last Update(k, ·)
        // on this rank ran, the panel message is recycled into the pool
        let mut uses = vec![0u32; nb];
        for &t in &schedule.order[ctx.rank] {
            if let TaskKind::Update(k, _) = graph.tasks[t as usize] {
                uses[k as usize] += 1;
            }
        }

        for &t in &schedule.order[ctx.rank] {
            match graph.tasks[t as usize] {
                TaskKind::Factor(k) => {
                    let k = k as usize;
                    let span_start = ctx.probe().now();
                    let tb = std::time::Instant::now();
                    // On numeric breakdown, panic with the typed error as
                    // payload: the runtime's poison broadcast wakes blocked
                    // peers, and the host recovers the `SolverError` via
                    // `catch_solver_panic` (see `factor_par1d_checked`).
                    let piv = factor_block_opts(&mut m, k, threshold, &mut stats, &mut scratch)
                        .unwrap_or_else(|e| std::panic::panic_any(e));
                    busy += tb.elapsed().as_secs_f64();
                    ctx.probe().span_at("panel-factor", k as u32, span_start);
                    // ship the factored panel + pivots to updaters
                    let msg = pack_panel(&mut ctx, &m, k, &piv);
                    ctx.multicast(panel_dests[k].iter().copied(), msg.clone());
                    if panel_dests[k].contains(&ctx.rank) {
                        received[k] = Some(RecvPanel::new(&m, k, msg));
                    }
                    pivots.push((k, piv));
                }
                TaskKind::Update(k, j) => {
                    let (k, j) = (k as usize, j as usize);
                    if received[k].is_none() {
                        let t_wait = std::time::Instant::now();
                        let msg = ctx.recv(panel_tag(k));
                        stats.update_wait_secs += t_wait.elapsed().as_secs_f64();
                        received[k] = Some(RecvPanel::new(&m, k, msg));
                    }
                    let rp = received[k].take().unwrap();
                    let piv = rp.msg.ints.clone();
                    let span_start = ctx.probe().now();
                    let tb = std::time::Instant::now();
                    update_block_with_panel(
                        &mut m,
                        k,
                        j,
                        &rp.panel(),
                        &piv,
                        &mut stats,
                        &mut scratch,
                    );
                    busy += tb.elapsed().as_secs_f64();
                    ctx.probe().span_at("update", k as u32, span_start);
                    uses[k] -= 1;
                    if uses[k] == 0 {
                        // last local use: hand the payload back to the pool
                        ctx.recycle(rp.msg);
                    } else {
                        received[k] = Some(rp);
                    }
                }
            }
        }
        stats.scratch_grow_events = scratch.grow_events();
        stats.scratch_peak_bytes = scratch.peak_bytes();
        ctx.probe()
            .count("scratch_grow_events", stats.scratch_grow_events);
        stats.emit_update_probe(ctx.probe());

        // return owned column blocks
        let blocks: Vec<(usize, crate::storage::ColBlock)> = (0..nb)
            .filter(|&b| owner[b] as usize == ctx.rank)
            .map(|b| (b, std::mem::take(&mut m.cols[b])))
            .collect();
        (blocks, pivots, stats, ctx.max_pending_bytes, busy)
    };
    let (outs, comm): (Vec<RankOut>, (u64, u64)) = match (collector, jitter_seed) {
        (Some(c), _) => run_machine_traced(nprocs, c, spmd),
        (None, Some(seed)) => run_machine_jittered(nprocs, seed, spmd),
        (None, None) => run_machine(nprocs, spmd),
    };
    let elapsed = t0.elapsed().as_secs_f64();

    // reassemble
    let mut blocks = BlockMatrix::from_csc_filtered(a, pattern.clone(), |_| false);
    let mut pivots: Vec<Vec<u32>> = vec![Vec::new(); nb];
    let merged = FactorStats::default();
    let mut merged = merged;
    let mut peaks = Vec::with_capacity(nprocs);
    let mut busys = Vec::with_capacity(nprocs);
    for (cols, pivs, stats, peak, busy) in outs {
        for (b, cb) in cols {
            blocks.cols[b] = cb;
        }
        for (b, p) in pivs {
            pivots[b] = p;
        }
        merged.absorb(&stats);
        peaks.push(peak);
        busys.push(busy);
    }
    Par1dResult {
        blocks,
        pivots,
        stats: merged,
        elapsed,
        comm,
        peak_buffer_bytes: peaks,
        busy_secs: busys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::factor_sequential;
    use crate::solve::solve_factored;
    use splu_machine::T3D;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{amalgamate, partition_supernodes, static_symbolic_factorization};

    fn pattern_for(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> Arc<BlockPattern> {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        Arc::new(BlockPattern::build(&s, &part))
    }

    fn check_matches_sequential(a: &splu_sparse::CscMatrix, nprocs: usize, strategy: Strategy1d) {
        let pattern = pattern_for(a, 4, 8);
        let mut seq = BlockMatrix::from_csc(a, pattern.clone());
        let (piv_seq, _) = factor_sequential(&mut seq).unwrap();
        let par = factor_par1d(a, pattern, nprocs, strategy);
        assert_eq!(par.pivots, piv_seq, "pivot sequences must match");
        let n = a.ncols();
        for i in 0..n {
            for j in 0..n {
                let s = seq.get_entry(i, j);
                let p = par.blocks.get_entry(i, j);
                assert!(
                    s == p,
                    "entry ({i},{j}): sequential {s} vs parallel {p} — must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn ca_matches_sequential_various_procs() {
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        for p in [1usize, 2, 3, 5] {
            check_matches_sequential(&a, p, Strategy1d::ComputeAhead);
        }
    }

    #[test]
    fn rapid_matches_sequential_various_procs() {
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        for p in [2usize, 4] {
            check_matches_sequential(&a, p, Strategy1d::GraphScheduled(T3D));
        }
    }

    #[test]
    fn random_matrix_parallel_solve() {
        let a = gen::random_sparse(90, 4, 0.5, ValueModel::default());
        let pattern = pattern_for(&a, 4, 10);
        let par = factor_par1d(&a, pattern, 4, Strategy1d::ComputeAhead);
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&xt);
        let x = solve_factored(&par.blocks, &par.pivots, &b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "solve error {err}");
    }

    #[test]
    fn communication_happens_and_is_counted() {
        let a = gen::grid2d(8, 8, 0.3, ValueModel::default());
        let pattern = pattern_for(&a, 4, 8);
        let par = factor_par1d(&a, pattern, 3, Strategy1d::ComputeAhead);
        let (msgs, bytes) = par.comm;
        assert!(msgs > 0, "multiprocessor run must communicate");
        assert!(bytes > 0);
        assert_eq!(par.peak_buffer_bytes.len(), 3);
    }

    #[test]
    fn single_proc_sends_nothing() {
        let a = gen::grid2d(5, 5, 0.3, ValueModel::default());
        let pattern = pattern_for(&a, 4, 8);
        let par = factor_par1d(&a, pattern, 1, Strategy1d::ComputeAhead);
        assert_eq!(par.comm.0, 0);
    }
}
