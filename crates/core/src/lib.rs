//! `splu-core` — the S\* sparse LU factorization with partial pivoting.
//!
//! This crate implements the paper's numerical algorithms on top of the
//! static structures from `splu-symbolic`:
//!
//! * [`storage`] — dense-block storage of the 2D-partitioned matrix
//!   (packed L panels, masked U panels, full diagonal blocks) with the
//!   structure-safe row interchange primitive,
//! * [`seq`] — the partitioned sequential algorithm of Figs. 6–8:
//!   `Factor(k)` (panel factorization with partial pivoting and delayed
//!   interchanges) and `Update(k, j)` (`DTRSM` + `DGEMM` block updates),
//! * [`solve`] — the two triangular solvers `L y = P b`, `U x = y`,
//! * [`pipeline`] — one-call driver: preprocess → symbolic → partition →
//!   amalgamate → factor → solve,
//! * [`par1d`] — the 1D data-mapping parallel codes (compute-ahead and
//!   graph-scheduled / RAPID-style execution, §5.1),
//! * [`par2d`] — the 2D block-cyclic asynchronous code (§5.2, Figs. 12–15)
//!   with its synchronous-barrier ablation variant, overlap-degree
//!   instrumentation (Theorem 2) and buffer accounting.
//!
//! Entry point for most users: [`pipeline::SparseLuSolver`].

pub mod error;
pub mod par1d;
pub mod par2d;
pub mod pipeline;
pub mod refine;
pub mod scratch;
pub mod seq;
pub mod solve;
pub mod storage;

pub use error::SolverError;
pub use pipeline::{FactorOptions, FactorizedLu, SolveWorkspace, SparseLuSolver};
pub use refine::{pivot_growth, refine, SolveQuality};
pub use scratch::FactorScratch;
pub use seq::{factor_sequential, FactorStats};
pub use storage::BlockMatrix;
