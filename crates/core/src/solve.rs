//! Triangular solvers over the factored block storage.
//!
//! The factorization stores `L` with *trailing-only* row interchanges
//! (delayed pivoting): the multipliers of column `m` stay in the storage
//! slots they were computed in. Solving `A x = b` therefore *replays* the
//! elimination on the right-hand side — interchange, then eliminate, in
//! the original step order — followed by an ordinary back substitution
//! with `U`. This is exactly the paper's `L y = P b`, `U x = y` pair
//! (§2), expressed in slot coordinates.

use crate::storage::BlockMatrix;
use splu_kernels::{dgemm, dtrsm_left_lower_unit, dtrsm_left_upper};

/// Reusable buffers for the blocked multi-RHS solves (no allocation per
/// solve once warm).
#[derive(Default)]
pub struct MultiSolveScratch {
    /// Gathered `w × nrhs` panel of the current block's RHS rows.
    block: Vec<f64>,
    /// Gather/product buffer (L-panel products, U-column gathers).
    work: Vec<f64>,
}

/// Forward elimination: replay the recorded pivoting/elimination steps on
/// `y` in place (computes `y ← L⁻¹ P y`).
///
/// Because `Factor(k)` swaps *full rows within its column block* (LAPACK
/// panel semantics, Fig. 7 line 04), the stored panel L holds post-swap
/// multipliers: the correct replay applies all of a block's interchanges
/// to `y` first, then the block's eliminations — exactly like LAPACK's
/// `getrs` does per panel.
pub fn forward_eliminate(m: &BlockMatrix, pivots: &[Vec<u32>], y: &mut [f64]) {
    assert_eq!(y.len(), m.n);
    let nb = m.pattern.nblocks();
    for k in 0..nb {
        let cb = &m.cols[k];
        let lo = cb.lo as usize;
        let w = cb.w as usize;
        let nl = cb.lrows.len();
        // 1. the block's interchanges, in pivot order
        for (t, &piv) in pivots[k].iter().enumerate() {
            let row = lo + t;
            if piv as usize != row {
                y.swap(row, piv as usize);
            }
        }
        // 2. the block's eliminations with the stored (post-swap) panel
        for t in 0..w {
            let row = lo + t;
            let ym = y[row];
            if ym != 0.0 {
                for r in (t + 1)..w {
                    y[lo + r] -= cb.diag[r + t * w] * ym;
                }
                let lcol = &cb.lpanel[t * nl..(t + 1) * nl];
                for (p, &g) in cb.lrows.iter().enumerate() {
                    y[g as usize] -= lcol[p] * ym;
                }
            }
        }
    }
}

/// Back substitution: solve `U x = y` in place over the block storage.
///
/// # Panics
/// Panics if a diagonal entry is exactly zero.
pub fn back_substitute(m: &BlockMatrix, y: &mut [f64]) {
    assert_eq!(y.len(), m.n);
    let nb = m.pattern.nblocks();
    // Per row block k, the U blocks to its right live in cols[j].ublocks;
    // the pattern's u_blocks[k] lists the j's.
    for k in (0..nb).rev() {
        let lo = m.pattern.part.start(k);
        let w = m.pattern.part.width(k);
        for t in (0..w).rev() {
            let row = lo + t;
            let mut s = y[row];
            // off-block U entries
            for up in &m.pattern.u_blocks[k] {
                let j = up.j as usize;
                let cb = &m.cols[j];
                let ub_idx = cb
                    .ublocks
                    .binary_search_by_key(&(k as u32), |u| u.k)
                    .expect("pattern/storage mismatch");
                let ub = &cb.ublocks[ub_idx];
                let h = ub.h as usize;
                for (cpos, &gc) in ub.cols.iter().enumerate() {
                    s -= ub.panel[t + cpos * h] * y[gc as usize];
                }
            }
            // in-block U entries
            let cb = &m.cols[k];
            for c in (t + 1)..w {
                s -= cb.diag[t + c * w] * y[lo + c];
            }
            let d = cb.diag[t + t * w];
            assert!(d != 0.0, "zero U diagonal at row {row}");
            y[row] = s / d;
        }
    }
}

/// Solve `A x = b` given the factored storage and pivot sequences, where
/// `A` is the matrix that was scattered into `m` before factorization.
pub fn solve_factored(m: &BlockMatrix, pivots: &[Vec<u32>], b: &[f64]) -> Vec<f64> {
    let mut y = b.to_vec();
    solve_factored_in_place(m, pivots, &mut y);
    y
}

/// In-place [`solve_factored`]: `y` enters holding `b` and leaves holding
/// `x`. No allocation — the workspace-reusing building block for
/// iterative refinement and the solver service.
pub fn solve_factored_in_place(m: &BlockMatrix, pivots: &[Vec<u32>], y: &mut [f64]) {
    forward_eliminate(m, pivots, y);
    back_substitute(m, y);
}

/// Blocked forward elimination for `nrhs` right-hand sides stored
/// column-major in `y` (`y[c * n + i]` = component `i` of RHS `c`).
///
/// Per column block the interchanges are replayed on every RHS, then the
/// whole `w × nrhs` panel goes through one unit-lower TRSM and the packed
/// L panel is applied with one DGEMM — the BLAS-3 form of
/// [`forward_eliminate`] (which it matches up to roundoff; summation
/// order inside the DGEMM differs).
pub fn forward_eliminate_multi(
    m: &BlockMatrix,
    pivots: &[Vec<u32>],
    y: &mut [f64],
    nrhs: usize,
    scratch: &mut MultiSolveScratch,
) {
    let n = m.n;
    assert_eq!(y.len(), n * nrhs);
    let nb = m.pattern.nblocks();
    for k in 0..nb {
        let cb = &m.cols[k];
        let lo = cb.lo as usize;
        let w = cb.w as usize;
        let nl = cb.lrows.len();
        // 1. the block's interchanges, applied to every RHS column
        for (t, &piv) in pivots[k].iter().enumerate() {
            let row = lo + t;
            if piv as usize != row {
                for c in 0..nrhs {
                    y.swap(c * n + row, c * n + piv as usize);
                }
            }
        }
        // 2. gather the block's RHS rows into a w × nrhs panel and apply
        //    the unit-lower diagonal factor to all columns at once
        scratch.block.clear();
        for c in 0..nrhs {
            scratch
                .block
                .extend_from_slice(&y[c * n + lo..c * n + lo + w]);
        }
        dtrsm_left_lower_unit(w, nrhs, &cb.diag, w, &mut scratch.block, w);
        for c in 0..nrhs {
            y[c * n + lo..c * n + lo + w].copy_from_slice(&scratch.block[c * w..(c + 1) * w]);
        }
        // 3. propagate through the packed L panel with one DGEMM, then
        //    scatter-subtract at the panel's global rows
        if nl > 0 {
            scratch.work.clear();
            scratch.work.resize(nl * nrhs, 0.0);
            dgemm(
                nl,
                nrhs,
                w,
                1.0,
                &cb.lpanel,
                nl,
                &scratch.block,
                w,
                0.0,
                &mut scratch.work,
                nl,
            );
            for c in 0..nrhs {
                let prod = &scratch.work[c * nl..(c + 1) * nl];
                let ycol = &mut y[c * n..(c + 1) * n];
                for (p, &g) in cb.lrows.iter().enumerate() {
                    ycol[g as usize] -= prod[p];
                }
            }
        }
    }
}

/// Blocked back substitution for `nrhs` right-hand sides stored
/// column-major in `y`: per row block (last to first), the off-block `U`
/// contributions are one DGEMM per U block against the already-final
/// solution rows, and the diagonal block is one non-unit upper TRSM over
/// the whole panel.
///
/// # Panics
/// Panics if a diagonal entry of `U` is exactly zero.
pub fn back_substitute_multi(
    m: &BlockMatrix,
    y: &mut [f64],
    nrhs: usize,
    scratch: &mut MultiSolveScratch,
) {
    let n = m.n;
    assert_eq!(y.len(), n * nrhs);
    let nb = m.pattern.nblocks();
    for k in (0..nb).rev() {
        let lo = m.pattern.part.start(k);
        let w = m.pattern.part.width(k);
        scratch.block.clear();
        for c in 0..nrhs {
            scratch
                .block
                .extend_from_slice(&y[c * n + lo..c * n + lo + w]);
        }
        // off-block U: rows of block k against final x values from blocks
        // right of k
        for up in &m.pattern.u_blocks[k] {
            let j = up.j as usize;
            let cb = &m.cols[j];
            let ub_idx = cb
                .ublocks
                .binary_search_by_key(&(k as u32), |u| u.k)
                .expect("pattern/storage mismatch");
            let ub = &cb.ublocks[ub_idx];
            let h = ub.h as usize;
            let nc = ub.cols.len();
            if nc == 0 {
                continue;
            }
            // gather the solution rows at the U block's global columns
            // (an nc × nrhs panel), then block -= panel · gathered
            scratch.work.clear();
            for c in 0..nrhs {
                let ycol = &y[c * n..(c + 1) * n];
                scratch
                    .work
                    .extend(ub.cols.iter().map(|&gc| ycol[gc as usize]));
            }
            dgemm(
                w,
                nrhs,
                nc,
                -1.0,
                &ub.panel,
                h,
                &scratch.work,
                nc,
                1.0,
                &mut scratch.block,
                w,
            );
        }
        // in-block: non-unit upper solve on the whole panel
        let cb = &m.cols[k];
        dtrsm_left_upper(w, nrhs, &cb.diag, w, &mut scratch.block, w);
        for c in 0..nrhs {
            y[c * n + lo..c * n + lo + w].copy_from_slice(&scratch.block[c * w..(c + 1) * w]);
        }
    }
}

/// In-place batched solve of `nrhs` systems: `y` enters holding the
/// right-hand sides column-major and leaves holding the solutions.
pub fn solve_factored_multi_in_place(
    m: &BlockMatrix,
    pivots: &[Vec<u32>],
    y: &mut [f64],
    nrhs: usize,
    scratch: &mut MultiSolveScratch,
) {
    forward_eliminate_multi(m, pivots, y, nrhs, scratch);
    back_substitute_multi(m, y, nrhs, scratch);
}

/// Batched solve: `b` holds `nrhs` right-hand sides column-major
/// (`b[c * n + i]` = component `i` of RHS `c`); returns the solutions in
/// the same layout.
pub fn solve_factored_multi(
    m: &BlockMatrix,
    pivots: &[Vec<u32>],
    b: &[f64],
    nrhs: usize,
) -> Vec<f64> {
    let mut y = b.to_vec();
    let mut scratch = MultiSolveScratch::default();
    solve_factored_multi_in_place(m, pivots, &mut y, nrhs, &mut scratch);
    y
}

/// Forward substitution with `Uᵀ` (a lower-triangular solve): computes
/// `y ← U⁻ᵀ y` in place, reading `U`'s columns from the block storage.
///
/// # Panics
/// Panics if a diagonal entry is exactly zero.
pub fn forward_substitute_ut(m: &BlockMatrix, y: &mut [f64]) {
    assert_eq!(y.len(), m.n);
    let nb = m.pattern.nblocks();
    for jb in 0..nb {
        let cb = &m.cols[jb];
        let lo = cb.lo as usize;
        let w = cb.w as usize;
        for t in 0..w {
            let col = lo + t;
            let mut s = y[col];
            // entries of U column `col` above the diagonal block
            for ub in &cb.ublocks {
                if let Ok(cpos) = ub.cols.binary_search(&(col as u32)) {
                    let h = ub.h as usize;
                    let base = ub.lo_k as usize;
                    let panel_col = &ub.panel[cpos * h..(cpos + 1) * h];
                    for (r, &v) in panel_col.iter().enumerate() {
                        s -= v * y[base + r];
                    }
                }
            }
            // in-block entries above the diagonal
            for r in 0..t {
                s -= cb.diag[r + t * w] * y[lo + r];
            }
            let d = cb.diag[t + t * w];
            assert!(d != 0.0, "zero U diagonal at column {col}");
            y[col] = s / d;
        }
    }
}

/// Backward pass with `L̂ᵀ` and the reversed interchanges: computes
/// `y ← Mᵀ y` where `M` is the interleaved swap/eliminate operator the
/// forward elimination applies (so `solve_factored_transpose` below solves
/// `Bᵀ z = c` for the factored matrix `B`). Per block, from last to
/// first: the transposed unit-lower solve, then the block's interchanges
/// in reverse order.
pub fn backward_eliminate_t(m: &BlockMatrix, pivots: &[Vec<u32>], y: &mut [f64]) {
    assert_eq!(y.len(), m.n);
    let nb = m.pattern.nblocks();
    for k in (0..nb).rev() {
        let cb = &m.cols[k];
        let lo = cb.lo as usize;
        let w = cb.w as usize;
        let nl = cb.lrows.len();
        // transposed eliminations: solve L̂ᵀ within the block, iterating
        // columns (= L̂ᵀ rows) in descending order
        for t in (0..w).rev() {
            let mut s = y[lo + t];
            for r in (t + 1)..w {
                s -= cb.diag[r + t * w] * y[lo + r];
            }
            let lcol = &cb.lpanel[t * nl..(t + 1) * nl];
            for (p, &g) in cb.lrows.iter().enumerate() {
                s -= lcol[p] * y[g as usize];
            }
            y[lo + t] = s;
        }
        // reversed interchanges
        for (t, &piv) in pivots[k].iter().enumerate().rev() {
            let row = lo + t;
            if piv as usize != row {
                y.swap(row, piv as usize);
            }
        }
    }
}

/// Solve `Bᵀ z = c` where `B` is the matrix that was factored into `m`
/// (slot coordinates): `w = U⁻ᵀ c`, then `z = Mᵀ w`.
pub fn solve_factored_transpose(m: &BlockMatrix, pivots: &[Vec<u32>], c: &[f64]) -> Vec<f64> {
    let mut y = c.to_vec();
    solve_factored_transpose_in_place(m, pivots, &mut y);
    y
}

/// In-place [`solve_factored_transpose`]: `y` enters holding `c` and
/// leaves holding `z`. No allocation.
pub fn solve_factored_transpose_in_place(m: &BlockMatrix, pivots: &[Vec<u32>], y: &mut [f64]) {
    forward_substitute_ut(m, y);
    backward_eliminate_t(m, pivots, y);
}

#[cfg(test)]
mod tests {
    use crate::seq::factor_sequential;
    use crate::storage::BlockMatrix;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    fn build(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> BlockMatrix {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        BlockMatrix::from_csc(a, Arc::new(BlockPattern::build(&s, &part)))
    }

    fn roundtrip(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> f64 {
        let n = a.ncols();
        let mut m = build(a, r, bsize);
        let (pivots, _) = factor_sequential(&mut m).unwrap();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.3 - 1.5).collect();
        let b = a.matvec(&xt);
        let x = super::solve_factored(&m, &pivots, &b);
        x.iter()
            .zip(&xt)
            .fold(0.0f64, |mx, (a, b)| mx.max((a - b).abs()))
    }

    #[test]
    fn solves_dense() {
        let a = gen::dense_random(25, ValueModel::default());
        assert!(roundtrip(&a, 0, 6) < 1e-8);
    }

    #[test]
    fn solves_sparse_random() {
        for seed in 0..3 {
            let a = gen::random_sparse(
                80,
                3,
                0.5,
                ValueModel {
                    diag_scale: 1.0,
                    seed,
                },
            );
            assert!(roundtrip(&a, 4, 12) < 1e-7, "seed {seed}");
        }
    }

    #[test]
    fn solves_grid_various_block_sizes() {
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        for (r, bs) in [(0, 1), (0, 4), (4, 10), (6, 25)] {
            assert!(roundtrip(&a, r, bs) < 1e-7, "r={r} bs={bs}");
        }
    }

    #[test]
    fn multi_rhs_agrees_with_repeated_single_rhs() {
        let a = gen::grid2d(9, 8, 0.4, ValueModel::default());
        let n = a.ncols();
        let mut m = build(&a, 4, 10);
        let (pivots, _) = factor_sequential(&mut m).unwrap();
        let nrhs = 5;
        let b: Vec<f64> = (0..n * nrhs)
            .map(|i| ((i % 13) as f64) * 0.4 - 2.0)
            .collect();
        let xs = super::solve_factored_multi(&m, &pivots, &b, nrhs);
        let scale = b.iter().fold(1.0f64, |mx, &v| mx.max(v.abs()));
        for c in 0..nrhs {
            let x1 = super::solve_factored(&m, &pivots, &b[c * n..(c + 1) * n]);
            for i in 0..n {
                let d = (xs[c * n + i] - x1[i]).abs();
                assert!(d < 1e-9 * scale, "rhs {c} row {i}: diverge by {d}");
            }
        }
    }

    #[test]
    fn multi_rhs_single_column_matches_scalar_path() {
        let a = gen::random_sparse(60, 3, 0.5, ValueModel::default());
        let n = a.ncols();
        let mut m = build(&a, 4, 8);
        let (pivots, _) = factor_sequential(&mut m).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let x1 = super::solve_factored(&m, &pivots, &b);
        let xm = super::solve_factored_multi(&m, &pivots, &b, 1);
        for i in 0..n {
            assert!((x1[i] - xm[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let a = gen::grid2d(7, 7, 0.5, ValueModel::default());
        let n = a.ncols();
        let mut m = build(&a, 4, 8);
        let (pivots, _) = factor_sequential(&mut m).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 2.5).collect();
        let x = super::solve_factored(&m, &pivots, &b);
        let mut y = b.clone();
        super::solve_factored_in_place(&m, &pivots, &mut y);
        assert_eq!(x, y, "in-place forward/backward must be bitwise equal");
        let z = super::solve_factored_transpose(&m, &pivots, &b);
        let mut w = b.clone();
        super::solve_factored_transpose_in_place(&m, &pivots, &mut w);
        assert_eq!(z, w, "in-place transpose solve must be bitwise equal");
    }

    #[test]
    fn transpose_solve_matches_dense_transpose_reference() {
        // `solve_factored_transpose` must solve Aᵀ x = c for the matrix
        // the blocks were built from — checked against a dense GEPP
        // solve of the explicitly transposed system.
        for (case, a) in [
            gen::grid2d(8, 8, 0.5, ValueModel::default()),
            gen::random_sparse(70, 4, 0.5, ValueModel::default()),
        ]
        .iter()
        .enumerate()
        {
            let n = a.ncols();
            let mut m = build(a, 4, 10);
            let (pivots, _) = factor_sequential(&mut m).unwrap();
            let c: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.4 - 1.7).collect();
            let x = super::solve_factored_transpose(&m, &pivots, &c);
            let xd = splu_kernels::dense_solve(&a.to_dense().transpose(), &c).unwrap();
            let err = x
                .iter()
                .zip(&xd)
                .fold(0.0f64, |mx, (p, q)| mx.max((p - q).abs()));
            assert!(err < 1e-7, "case {case}: transpose solve diverges by {err}");
            // And the residual of the transposed system itself is small.
            let r = a.matvec_transpose(&x);
            let res = r
                .iter()
                .zip(&c)
                .fold(0.0f64, |mx, (p, q)| mx.max((p - q).abs()));
            assert!(res < 1e-7, "case {case}: ‖Aᵀx − c‖∞ = {res}");
        }
    }

    #[test]
    fn agrees_with_gp_baseline() {
        let a = gen::grid2d(8, 7, 0.5, ValueModel::default());
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut m = build(&a, 4, 8);
        let (pivots, _) = factor_sequential(&mut m).unwrap();
        let x1 = super::solve_factored(&m, &pivots, &b);
        let f = splu_superlu::gp_factor(&a, 1.0).unwrap();
        let x2 = splu_superlu::gp_solve(&f, &b);
        let err = x1
            .iter()
            .zip(&x2)
            .fold(0.0f64, |mx, (a, b)| mx.max((a - b).abs()));
        assert!(err < 1e-8, "solutions diverge by {err}");
    }
}
