//! Per-processor scratch arena for the factorization hot path.
//!
//! Every driver (sequential, 1D, 2D, pipelined) owns one [`FactorScratch`]
//! per processor and threads it through `Factor(k)` / `Update(k, j)` /
//! `ScaleSwap`. All temporaries of the elimination loop — the stacked
//! GEMM product buffer, the rank-1 update vectors, the 2D code's row and
//! panel copies, and the blocked GEMM's pack buffers — live here and only
//! ever *grow* to the high-water mark of the shapes seen, so steady-state
//! factorization performs zero heap allocations per panel. (Scatter
//! position maps are not scratch at all anymore: they are precomputed
//! once in `splu_symbolic::BlockPattern` and read in place.)
//!
//! The proof mechanism: [`FactorScratch::grow_events`] counts every
//! capacity increase. Drivers report it through the `scratch_grow_events`
//! probe counter and [`crate::seq::FactorStats::scratch_grow_events`];
//! a warmed-up refactorization must report a delta of zero (asserted by
//! the `scratch_reuse` tests).

use splu_kernels::GemmScratch;

/// Reusable buffers for the factorization loop (one per processor).
///
/// Fields are `pub(crate)` so the drivers can borrow several buffers
/// simultaneously; growth accounting goes through the `prep_*` helpers.
#[derive(Default)]
pub struct FactorScratch {
    /// GEMM product buffer (`update`: the stacked `L · U_kj` panel before
    /// the map-driven scatter).
    pub(crate) temp: Vec<f64>,
    /// Rank-1 update row of `Factor(k)` (`U` row right of the pivot).
    pub(crate) urow: Vec<f64>,
    /// Rank-1 update column of `Factor(k)` (scaled `L` column).
    pub(crate) lcol: Vec<f64>,
    /// Full-width row buffer (2D pivot-row / swap traffic).
    pub(crate) rowbuf: Vec<f64>,
    /// Second full-width row buffer (row interchanges swap two rows).
    pub(crate) rowbuf2: Vec<f64>,
    /// Panel-sized copy buffer (2D: `L_kk`, received `U`/`L` panels).
    pub(crate) panel: Vec<f64>,
    /// Second panel-sized copy buffer.
    pub(crate) panel2: Vec<f64>,
    /// Generic index list (update targets, owned block ids, …).
    pub(crate) idx: Vec<u32>,
    /// Per-in-flight-stage `L_kk` staging slots of the 2D lookahead
    /// executor: slot `k mod slots` holds stage `k`'s diagonal panel
    /// across that stage's whole TRSM chain ([`stage_ids`](Self) tags the
    /// occupant so the panel is staged once per stage, not once per
    /// block). With a window of `W`, at most `W + 1` stages have live
    /// TRSM work, so `W + 1` slots suffice and reuse is collision-free.
    pub(crate) stage_panels: Vec<Vec<f64>>,
    /// Stage currently staged in each slot (`u64::MAX` = empty).
    pub(crate) stage_ids: Vec<u64>,
    /// Placeholder column block for the `update_block` borrow dance
    /// (swapping it in and out of the matrix allocates nothing).
    pub(crate) dummy: crate::storage::ColBlock,
    /// Pack buffers of the blocked GEMM kernel.
    pub(crate) gemm: GemmScratch,
    pub(crate) grow_events: u64,
}

impl FactorScratch {
    /// A fresh, empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffer-capacity growth events since construction
    /// (including the blocked-GEMM pack buffers). Zero delta across a
    /// factorization ⇒ the run allocated nothing in the hot loop.
    pub fn grow_events(&self) -> u64 {
        self.grow_events + self.gemm.grow_events()
    }

    /// High-water footprint of the arena in bytes. Capacities never
    /// shrink, so the current capacities *are* the peak.
    pub fn peak_bytes(&self) -> u64 {
        let f64s = self.temp.capacity()
            + self.urow.capacity()
            + self.lcol.capacity()
            + self.rowbuf.capacity()
            + self.rowbuf2.capacity()
            + self.panel.capacity()
            + self.panel2.capacity()
            + self
                .stage_panels
                .iter()
                .map(|p| p.capacity())
                .sum::<usize>();
        let u32s = self.idx.capacity();
        (f64s * 8 + u32s * 4 + self.gemm.peak_bytes()) as u64
    }

    /// Ensure `n` stage-panel slots exist and mark them all empty (stage
    /// identities must not leak across runs). Growing the slot table
    /// counts one grow event; a warmed arena re-run with the same window
    /// allocates nothing here.
    pub(crate) fn ensure_stage_slots(&mut self, n: usize) {
        if self.stage_panels.len() < n {
            self.grow_events += 1;
            self.stage_panels.resize_with(n, Vec::new);
            self.stage_ids.resize(n, u64::MAX);
        }
        for id in &mut self.stage_ids {
            *id = u64::MAX;
        }
    }

    /// Stage stage `k`'s `L_kk` panel (produced by `fill`) into its slot
    /// unless already resident, returning the staged slice.
    pub(crate) fn stage_panel(
        &mut self,
        k: usize,
        len: usize,
        fill: impl FnOnce(&mut Vec<f64>),
    ) -> &[f64] {
        let slot = k % self.stage_panels.len();
        if self.stage_ids[slot] != k as u64 {
            self.stage_ids[slot] = k as u64;
            let buf = &mut self.stage_panels[slot];
            prep_cap_f64(buf, len, &mut self.grow_events);
            fill(buf);
            debug_assert_eq!(buf.len(), len);
        }
        &self.stage_panels[slot]
    }
}

/// Clear `v` and reserve room for `len` elements, counting a grow event
/// into `grow_events` when the capacity actually increases.
pub(crate) fn prep_cap_f64(v: &mut Vec<f64>, len: usize, grow_events: &mut u64) {
    v.clear();
    if v.capacity() < len {
        *grow_events += 1;
        v.reserve(len);
    }
}

/// [`prep_cap_f64`] followed by zero-fill to exactly `len`.
pub(crate) fn prep_zeroed_f64(v: &mut Vec<f64>, len: usize, grow_events: &mut u64) {
    prep_cap_f64(v, len, grow_events);
    v.resize(len, 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_events_count_capacity_increases_only() {
        let mut s = FactorScratch::new();
        prep_zeroed_f64(&mut s.temp, 100, &mut s.grow_events);
        assert_eq!(s.grow_events(), 1);
        // same or smaller size: no growth
        prep_zeroed_f64(&mut s.temp, 100, &mut s.grow_events);
        prep_zeroed_f64(&mut s.temp, 40, &mut s.grow_events);
        assert_eq!(s.grow_events(), 1);
        // larger: one more
        prep_zeroed_f64(&mut s.temp, 1000, &mut s.grow_events);
        assert_eq!(s.grow_events(), 2);
        assert!(s.peak_bytes() >= 8000);
    }

    #[test]
    fn stage_slots_warm_up_then_stop_growing() {
        let mut s = FactorScratch::new();
        s.ensure_stage_slots(3);
        assert_eq!(s.grow_events(), 1, "slot table growth counts once");
        // three in-flight stages land in distinct slots
        for k in [5usize, 6, 7] {
            let p = s.stage_panel(k, 4, |b| b.resize(4, k as f64));
            assert_eq!(p, [k as f64; 4]);
        }
        let grown = s.grow_events();
        // re-staging a resident stage is free and does not re-fill
        let p = s.stage_panel(6, 4, |_| panic!("stage 6 already staged"));
        assert_eq!(p, [6.0; 4]);
        // slot reuse by a retired stage's successor re-fills in place
        let p = s.stage_panel(8, 4, |b| b.resize(4, 8.0));
        assert_eq!(p, [8.0; 4]);
        assert_eq!(s.grow_events(), grown, "warmed slots must not grow");
        // a warmed arena re-run with the same window allocates nothing
        s.ensure_stage_slots(3);
        assert!(s.stage_ids.iter().all(|&id| id == u64::MAX));
        s.stage_panel(5, 4, |b| b.resize(4, 0.0));
        assert_eq!(s.grow_events(), grown);
        assert!(s.peak_bytes() >= 3 * 4 * 8);
    }
}
