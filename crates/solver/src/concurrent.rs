//! Concurrent serving layer: factor worker pool, sharded cache, and
//! speculative refactor-ahead with single-flight dedup.
//!
//! [`SolverService`](crate::SolverService) serializes every
//! factorization through one cache mutex and factors on the caller's
//! thread; under mixed-tenant traffic a large cold-start factorization
//! blocks every cheap same-pattern refactor queued behind it.
//! [`ConcurrentService`] removes both bottlenecks:
//!
//! * **factor pool** — factorizations run on their own fixed pool of
//!   `splu-factor-{w}` threads, so independent matrices factor
//!   concurrently and the admission path never does numeric work;
//! * **sharded cache** — the factorization cache is split into
//!   `shards` independent [`FactorCache`]s selected by pattern
//!   fingerprint; each shard keeps its own deterministic-LRU clock and
//!   byte budget, and lock contention is observable per shard
//!   ([`ShardSnapshot::contended_locks`]);
//! * **sharded solve pools** — one [`WorkerPool`] per shard, all
//!   recording into a single shared metrics registry, so same-pattern
//!   solve bursts queue together without a global queue lock;
//! * **speculative refactor-ahead** — [`ConcurrentService::prefetch`]
//!   starts a same-pattern refactorization the moment new values
//!   arrive (e.g. a Newton step producing the next matrix), instead of
//!   on first solve; by the time the dependent solves land the factor
//!   is ready or already in flight;
//! * **single-flight dedup** — all concurrent requests for one
//!   `(pattern, values)` key coalesce onto one in-flight
//!   factorization ([`Flight`]); followers either park their solve on
//!   the flight (it is submitted the instant the factor completes,
//!   with the *original* submission timestamp and deadline) or, for
//!   blocking callers, wait on its condvar and share the identical
//!   [`Factorization`] handle.
//!
//! A request's end-to-end latency is therefore `wait_us + solve_us`
//! from its [`JobReport`]: `wait_us` spans admission → (flight) →
//! queue → dequeue because pending solves are re-submitted via
//! [`SolveJob::with_timing`], and expiry keeps the queue's
//! dequeue-time deadline semantics (see the [`queue`](crate::queue)
//! module docs).

use crate::cache::{CacheConfig, CacheStats, FactorCache};
use crate::queue::{JobReport, JobStatus, QueueStats, SolveJob, WorkerPool};
use crate::service::Reuse;
use crate::{Analysis, Factorization};
use splu_core::{FactorOptions, SolverError};
use splu_probe::metrics::Registry;
use splu_sparse::CscMatrix;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`ConcurrentService`].
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentConfig {
    /// Threads in the factorization pool.
    pub factor_workers: usize,
    /// Total solve worker threads, distributed across the shards.
    pub solve_workers: usize,
    /// Cache / solve-pool shards (selected by pattern fingerprint).
    pub shards: usize,
    /// Factor task queue capacity (blocking back-pressure beyond it).
    pub factor_queue_cap: usize,
    /// Per-shard solve queue capacity.
    pub solve_queue_cap: usize,
    /// Total cache byte budget, split evenly across the shards.
    pub cache_bytes: usize,
    /// Factorization tuning.
    pub options: FactorOptions,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            factor_workers: 4,
            solve_workers: 4,
            shards: 4,
            factor_queue_cap: 256,
            solve_queue_cap: 256,
            cache_bytes: 256 << 20,
            options: FactorOptions::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Sharded cache
// ---------------------------------------------------------------------

/// Per-shard cache observation for the load report.
#[derive(Debug, Clone, Copy)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Resident pattern entries.
    pub entries: usize,
    /// Resident bytes.
    pub resident_bytes: usize,
    /// `with_shard` calls routed to this shard.
    pub lookups: u64,
    /// Lock acquisitions that found the shard mutex already held
    /// (`try_lock` failed and the caller had to block).
    pub contended_locks: u64,
    /// The shard's cache counters.
    pub stats: CacheStats,
}

/// [`FactorCache`] split into independently locked shards by pattern
/// fingerprint. Each shard is its own deterministic-LRU domain with
/// `total_bytes / shards` of budget, so eviction order within a shard
/// is exactly the single-cache behaviour.
pub struct ShardedCache {
    shards: Vec<Mutex<FactorCache>>,
    contended: Vec<AtomicU64>,
    lookups: Vec<AtomicU64>,
}

impl ShardedCache {
    /// `shards` independent caches sharing `total_bytes` evenly.
    pub fn new(shards: usize, total_bytes: usize) -> Self {
        let n = shards.max(1);
        let per = (total_bytes / n).max(1);
        Self {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(FactorCache::new(CacheConfig {
                        capacity_bytes: per,
                    }))
                })
                .collect(),
            contended: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lookups: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning `pattern_fp`.
    pub fn shard_of(&self, pattern_fp: u64) -> usize {
        (pattern_fp % self.shards.len() as u64) as usize
    }

    /// Run `f` against the shard owning `pattern_fp`, counting the
    /// lookup and (if the mutex was already held) the contention.
    pub fn with_shard<R>(&self, pattern_fp: u64, f: impl FnOnce(&mut FactorCache) -> R) -> R {
        let i = self.shard_of(pattern_fp);
        self.lookups[i].fetch_add(1, Relaxed);
        let mut guard = if let Ok(g) = self.shards[i].try_lock() {
            g
        } else {
            self.contended[i].fetch_add(1, Relaxed);
            self.shards[i].lock().unwrap()
        };
        f(&mut guard)
    }

    /// Counters summed across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.lock().unwrap().stats();
            total.analysis_hits += st.analysis_hits;
            total.analysis_misses += st.analysis_misses;
            total.factor_hits += st.factor_hits;
            total.refactors += st.refactors;
            total.evictions += st.evictions;
        }
        total
    }

    /// Resident bytes summed across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().resident_bytes())
            .sum()
    }

    /// Per-shard observations.
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let c = s.lock().unwrap();
                ShardSnapshot {
                    shard: i,
                    entries: c.len(),
                    resident_bytes: c.resident_bytes(),
                    lookups: self.lookups[i].load(Relaxed),
                    contended_locks: self.contended[i].load(Relaxed),
                    stats: c.stats(),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Factor pool
// ---------------------------------------------------------------------

type FactorTask = Box<dyn FnOnce(usize) + Send>;

/// Fixed pool of `splu-factor-{w}` threads draining a bounded task
/// queue. Tasks receive their worker index (for interval attribution).
pub struct FactorPool {
    queue: Arc<crate::queue::BoundedQueue<FactorTask>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    metrics: Arc<Registry>,
}

impl FactorPool {
    /// Spawn `workers` factor threads over a queue of `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize, metrics: Arc<Registry>) -> Self {
        let queue: Arc<crate::queue::BoundedQueue<FactorTask>> =
            Arc::new(crate::queue::BoundedQueue::new(queue_cap));
        let handles = (0..workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("splu-factor-{w}"))
                    .spawn(move || {
                        let busy = metrics
                            .counter(&format!("splu_factor_worker_busy_us{{worker=\"{w}\"}}"));
                        let tasks = metrics.counter("splu_factor_tasks_total");
                        while let Some(task) = queue.pop() {
                            let t0 = Instant::now();
                            task(w);
                            busy.add(t0.elapsed().as_micros() as u64);
                            tasks.inc();
                        }
                    })
                    .expect("spawn factor worker")
            })
            .collect();
        Self {
            queue,
            handles,
            metrics,
        }
    }

    /// Blocking submit (back-pressure). `Err(task)` only after
    /// [`FactorPool::finish`] closed the queue.
    pub fn spawn(&self, task: FactorTask) -> Result<(), FactorTask> {
        self.queue.push(task)
    }

    /// Total factor tasks executed so far.
    pub fn tasks_run(&self) -> u64 {
        self.metrics.counter_value("splu_factor_tasks_total")
    }

    /// Close the queue, drain remaining tasks, and join the workers.
    pub fn finish(self) {
        self.queue.close();
        for h in self.handles {
            h.join().expect("factor worker panicked");
        }
    }
}

// ---------------------------------------------------------------------
// Single-flight factorization
// ---------------------------------------------------------------------

/// A solve parked on an in-flight factorization; re-submitted with its
/// original admission timestamp and deadline when the factor lands.
struct PendingSolve {
    id: usize,
    b: Vec<f64>,
    nrhs: usize,
    submitted: Instant,
    deadline: Option<Instant>,
    drop_solution: bool,
}

struct FlightState {
    result: Option<Result<(Factorization, Reuse), SolverError>>,
    pending: Vec<PendingSolve>,
}

/// One in-flight factorization for a `(pattern_fp, value_fp)` key.
/// All concurrent requests for the key share this object: the first
/// request creates it and enqueues the factor task; followers park
/// pending solves or block on `done`.
struct Flight {
    key: (u64, u64),
    /// Started by `prefetch` (refactor-ahead) rather than by a solve.
    speculative: bool,
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new(key: (u64, u64), speculative: bool) -> Self {
        Self {
            key,
            speculative,
            state: Mutex::new(FlightState {
                result: None,
                pending: Vec::new(),
            }),
            done: Condvar::new(),
        }
    }
}

/// Refactor-ahead accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct AheadStats {
    /// `prefetch` calls (one per value-arrival event).
    pub prefetches: u64,
    /// Speculative flights actually started (not already in flight).
    pub spec_started: u64,
    /// Solves that found their factorization already cached *by a
    /// completed speculative flight*.
    pub hits_ready: u64,
    /// Solves that joined a speculative flight still in progress.
    pub hits_inflight: u64,
    /// Solves (or blocking factorization calls) that had to start a
    /// demand flight themselves — the refactor-ahead misses.
    pub demand_flights: u64,
}

impl AheadStats {
    /// Fraction of factorization-needing requests served by the
    /// speculative path: `hits / (hits + demand_flights)`. 0.0 when no
    /// such requests happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits_ready + self.hits_inflight;
        let denom = hits + self.demand_flights;
        if denom == 0 {
            0.0
        } else {
            hits as f64 / denom as f64
        }
    }
}

struct AheadCounters {
    prefetches: AtomicU64,
    spec_started: AtomicU64,
    hits_ready: AtomicU64,
    hits_inflight: AtomicU64,
    demand_flights: AtomicU64,
}

impl AheadCounters {
    fn new() -> Self {
        Self {
            prefetches: AtomicU64::new(0),
            spec_started: AtomicU64::new(0),
            hits_ready: AtomicU64::new(0),
            hits_inflight: AtomicU64::new(0),
            demand_flights: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> AheadStats {
        AheadStats {
            prefetches: self.prefetches.load(Relaxed),
            spec_started: self.spec_started.load(Relaxed),
            hits_ready: self.hits_ready.load(Relaxed),
            hits_inflight: self.hits_inflight.load(Relaxed),
            demand_flights: self.demand_flights.load(Relaxed),
        }
    }
}

/// One factor task's execution window, relative to service start
/// (microseconds). The overlap test asserts two intervals for
/// *different* patterns intersect in time.
#[derive(Debug, Clone, Copy)]
pub struct FactorInterval {
    /// Pattern being factorized.
    pub pattern_fp: u64,
    /// Factor worker that ran it.
    pub worker: usize,
    /// Start offset from service epoch, µs.
    pub start_us: u64,
    /// End offset from service epoch, µs.
    pub end_us: u64,
}

struct ServiceInner {
    cache: ShardedCache,
    flights: Mutex<HashMap<(u64, u64), Arc<Flight>>>,
    /// Keys whose speculative flight completed successfully — a later
    /// cache full hit on such a key is a refactor-ahead "ready" hit.
    spec_done: Mutex<HashSet<(u64, u64)>>,
    ahead: AheadCounters,
    options: FactorOptions,
    metrics: Arc<Registry>,
    intervals: Mutex<Vec<FactorInterval>>,
    /// Reports for solves whose flight failed before reaching a pool.
    failed: Mutex<Vec<JobReport>>,
    epoch: Instant,
}

/// Final report of a [`ConcurrentService`] run.
pub struct ConcurrentReport {
    /// One report per submitted solve, sorted by id (pool reports plus
    /// flight-failure reports).
    pub reports: Vec<JobReport>,
    /// Solve queue counters summed across shards.
    pub queue: QueueStats,
    /// Cache counters summed across shards.
    pub cache: CacheStats,
    /// Cache bytes still resident at shutdown.
    pub cache_resident_bytes: usize,
    /// Per-shard cache observations.
    pub shards: Vec<ShardSnapshot>,
    /// Refactor-ahead accounting.
    pub ahead: AheadStats,
    /// Factor tasks executed.
    pub factor_tasks: u64,
    /// Factor execution windows (for overlap analysis).
    pub factor_intervals: Vec<FactorInterval>,
    /// The shared metrics registry (latency histograms, busy counters).
    pub metrics: Arc<Registry>,
}

/// The concurrent solver service (see module docs).
pub struct ConcurrentService {
    inner: Arc<ServiceInner>,
    factor_pool: FactorPool,
    solve_shards: Arc<Vec<WorkerPool>>,
}

impl ConcurrentService {
    /// Start the factor pool and per-shard solve pools.
    pub fn new(config: ConcurrentConfig) -> Self {
        let metrics = Arc::new(Registry::new());
        let shards = config.shards.max(1);
        let total_solvers = config.solve_workers.max(1);
        let base = total_solvers / shards;
        let rem = total_solvers % shards;
        let mut pools = Vec::with_capacity(shards);
        let mut offset = 0;
        for s in 0..shards {
            let w = (base + usize::from(s < rem)).max(1);
            pools.push(WorkerPool::with_registry(
                w,
                config.solve_queue_cap,
                Arc::clone(&metrics),
                offset,
            ));
            offset += w;
        }
        let inner = Arc::new(ServiceInner {
            cache: ShardedCache::new(shards, config.cache_bytes),
            flights: Mutex::new(HashMap::new()),
            spec_done: Mutex::new(HashSet::new()),
            ahead: AheadCounters::new(),
            options: config.options,
            metrics: Arc::clone(&metrics),
            intervals: Mutex::new(Vec::new()),
            failed: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        });
        let factor_pool = FactorPool::new(
            config.factor_workers,
            config.factor_queue_cap,
            Arc::clone(&metrics),
        );
        Self {
            inner,
            factor_pool,
            solve_shards: Arc::new(pools),
        }
    }

    /// The shared metrics registry (solve + factor histograms, per-
    /// worker busy counters, queue gauges).
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.metrics)
    }

    /// Current refactor-ahead counters.
    pub fn ahead_stats(&self) -> AheadStats {
        self.inner.ahead.snapshot()
    }

    fn shard_pool(&self, pattern_fp: u64) -> &WorkerPool {
        &self.solve_shards[self.inner.cache.shard_of(pattern_fp)]
    }

    fn spawn_flight(&self, a: Arc<CscMatrix>, flight: Arc<Flight>) {
        let inner = Arc::clone(&self.inner);
        let shards = Arc::clone(&self.solve_shards);
        let task: FactorTask =
            Box::new(move |worker| run_flight(&inner, &a, &flight, &shards, worker));
        if let Err(task) = self.factor_pool.spawn(task) {
            // Queue already closed (finish in progress): run inline so
            // the flight still completes and its pending solves report.
            task(usize::MAX);
        }
    }

    /// Speculative refactor-ahead: start factorizing `a` now, before
    /// any solve needs it. Call when new values arrive for a pattern
    /// (Newton step, time step). No-op if the key is already in
    /// flight; dedups with later demand requests via single-flight.
    pub fn prefetch(&self, a: &Arc<CscMatrix>) {
        self.inner.ahead.prefetches.fetch_add(1, Relaxed);
        let key = (a.pattern_fingerprint(), a.value_fingerprint());
        let flight = {
            let mut flights = self.inner.flights.lock().unwrap();
            if flights.contains_key(&key) {
                return;
            }
            let fl = Arc::new(Flight::new(key, true));
            flights.insert(key, Arc::clone(&fl));
            fl
        };
        self.inner.ahead.spec_started.fetch_add(1, Relaxed);
        self.spawn_flight(Arc::clone(a), flight);
    }

    /// Submit one solve request. Never blocks on numeric work: a cached
    /// factorization goes straight to the shard's solve pool; otherwise
    /// the solve parks on the (joined or started) flight and is
    /// submitted by the factor worker the moment the factor lands,
    /// with `submitted`/`deadline` fixed at *this* call.
    pub fn submit_solve(
        &self,
        id: usize,
        a: &Arc<CscMatrix>,
        b: Vec<f64>,
        nrhs: usize,
        deadline_us: Option<u64>,
        drop_solution: bool,
    ) {
        let submitted = Instant::now();
        let deadline = deadline_us.map(|us| submitted + Duration::from_micros(us));
        let pfp = a.pattern_fingerprint();
        let vfp = a.value_fingerprint();
        let key = (pfp, vfp);
        if let Some(f) = self.inner.cache.with_shard(pfp, |c| c.get_factor(pfp, vfp)) {
            if self.inner.spec_done.lock().unwrap().contains(&key) {
                self.inner.ahead.hits_ready.fetch_add(1, Relaxed);
            }
            let mut job = SolveJob::with_timing(id, f, b, nrhs, submitted, deadline);
            job.drop_solution = drop_solution;
            self.shard_pool(pfp)
                .submit(job)
                .expect("solve shard closed before factor pool");
            return;
        }
        let pending = PendingSolve {
            id,
            b,
            nrhs,
            submitted,
            deadline,
            drop_solution,
        };
        let existing = {
            let mut flights = self.inner.flights.lock().unwrap();
            match flights.get(&key) {
                Some(fl) => Some(Arc::clone(fl)),
                None => {
                    // starting a demand flight: refactor-ahead miss
                    self.inner.ahead.demand_flights.fetch_add(1, Relaxed);
                    let fl = Arc::new(Flight::new(key, false));
                    flights.insert(key, Arc::clone(&fl));
                    fl.state.lock().unwrap().pending.push(pending);
                    drop(flights);
                    self.spawn_flight(Arc::clone(a), fl);
                    return;
                }
            }
        };
        let fl = existing.expect("joined flight");
        if fl.speculative {
            self.inner.ahead.hits_inflight.fetch_add(1, Relaxed);
        }
        let mut st = fl.state.lock().unwrap();
        match &st.result {
            None => st.pending.push(pending),
            Some(res) => {
                // Raced the flight's completion (result set, key not
                // yet removed): act as the factor worker would have.
                let res = res.clone();
                drop(st);
                match res {
                    Ok((f, _)) => {
                        let mut job = SolveJob::with_timing(
                            pending.id,
                            f,
                            pending.b,
                            pending.nrhs,
                            pending.submitted,
                            pending.deadline,
                        );
                        job.drop_solution = pending.drop_solution;
                        self.shard_pool(pfp)
                            .submit(job)
                            .expect("solve shard closed before factor pool");
                    }
                    Err(e) => self.inner.failed.lock().unwrap().push(JobReport {
                        id: pending.id,
                        status: JobStatus::Failed(e),
                        x: None,
                        wait_us: pending.submitted.elapsed().as_micros() as u64,
                        solve_us: 0,
                        worker: usize::MAX,
                    }),
                }
            }
        }
    }

    /// Get (or compute) the factorization for `a`, blocking until it
    /// is ready. Concurrent callers for the same `(pattern, values)`
    /// coalesce onto one flight and receive the identical shared
    /// handle.
    pub fn factorization_blocking(
        &self,
        a: &Arc<CscMatrix>,
    ) -> Result<(Factorization, Reuse), SolverError> {
        let pfp = a.pattern_fingerprint();
        let vfp = a.value_fingerprint();
        let key = (pfp, vfp);
        if let Some(f) = self.inner.cache.with_shard(pfp, |c| c.get_factor(pfp, vfp)) {
            return Ok((f, Reuse::Full));
        }
        let flight = {
            let mut flights = self.inner.flights.lock().unwrap();
            match flights.get(&key) {
                Some(fl) => Arc::clone(fl),
                None => {
                    let fl = Arc::new(Flight::new(key, false));
                    flights.insert(key, Arc::clone(&fl));
                    self.inner.ahead.demand_flights.fetch_add(1, Relaxed);
                    drop(flights);
                    self.spawn_flight(Arc::clone(a), Arc::clone(&fl));
                    fl
                }
            }
        };
        if flight.speculative {
            self.inner.ahead.hits_inflight.fetch_add(1, Relaxed);
        }
        let mut st = flight.state.lock().unwrap();
        while st.result.is_none() {
            st = flight.done.wait(st).unwrap();
        }
        st.result.clone().expect("flight result set")
    }

    /// Shut down: drain the factor pool (completing every flight and
    /// submitting its pending solves), then drain the solve shards, and
    /// aggregate everything into one report.
    pub fn finish(self) -> ConcurrentReport {
        self.factor_pool.finish();
        let pools = Arc::try_unwrap(self.solve_shards)
            .ok()
            .expect("solve shards still referenced after factor pool drain");
        let mut reports = Vec::new();
        let mut queue = QueueStats::default();
        for pool in pools {
            let (r, s) = pool.finish();
            reports.extend(r);
            queue.accepted += s.accepted;
            queue.rejected_full += s.rejected_full;
            queue.expired += s.expired;
            queue.solved += s.solved;
            queue.failed += s.failed;
        }
        reports.append(&mut self.inner.failed.lock().unwrap());
        reports.sort_by_key(|r| r.id);
        let factor_tasks = self.inner.metrics.counter_value("splu_factor_tasks_total");
        ConcurrentReport {
            reports,
            queue,
            cache: self.inner.cache.stats(),
            cache_resident_bytes: self.inner.cache.resident_bytes(),
            shards: self.inner.cache.snapshots(),
            ahead: self.inner.ahead.snapshot(),
            factor_tasks,
            factor_intervals: std::mem::take(&mut self.inner.intervals.lock().unwrap()),
            metrics: Arc::clone(&self.inner.metrics),
        }
    }
}

/// Factor task body: compute (or find) the factorization for the
/// flight's key, publish the result, and dispatch parked solves.
fn run_flight(
    inner: &ServiceInner,
    a: &CscMatrix,
    flight: &Flight,
    shards: &[WorkerPool],
    worker: usize,
) {
    let key = flight.key;
    let (pfp, vfp) = key;
    let start = Instant::now();
    let result = (|| {
        // Recheck under the shard lock: a racing flight for the same
        // pattern (different values) may have landed since admission,
        // or an eviction may have removed the analysis — both paths
        // re-resolve here.
        if let Some(f) = inner.cache.with_shard(pfp, |c| c.get_factor(pfp, vfp)) {
            return Ok((f, Reuse::Full));
        }
        let (analysis, reuse) = match inner.cache.with_shard(pfp, |c| c.get_analysis(pfp)) {
            Some(an) => {
                inner.cache.with_shard(pfp, |c| c.note_refactor());
                (an, Reuse::Analysis)
            }
            None => {
                inner.cache.with_shard(pfp, |c| c.note_miss());
                (Analysis::of(a, inner.options), Reuse::None)
            }
        };
        let f = analysis.factorize(a)?;
        inner
            .cache
            .with_shard(pfp, |c| c.insert_factor(&analysis, f.clone()));
        Ok((f, reuse))
    })();
    let end = Instant::now();
    inner
        .metrics
        .histogram("splu_factor_us")
        .record(end.duration_since(start).as_micros() as u64);
    inner.intervals.lock().unwrap().push(FactorInterval {
        pattern_fp: pfp,
        worker,
        start_us: start.duration_since(inner.epoch).as_micros() as u64,
        end_us: end.duration_since(inner.epoch).as_micros() as u64,
    });
    if flight.speculative && result.is_ok() {
        inner.spec_done.lock().unwrap().insert(key);
    }
    // Publish before unregistering: a joiner that finds the flight in
    // the map sees the result; one that misses the map sees the cache.
    let pending = {
        let mut st = flight.state.lock().unwrap();
        st.result = Some(result.clone());
        std::mem::take(&mut st.pending)
    };
    inner.flights.lock().unwrap().remove(&key);
    flight.done.notify_all();
    match result {
        Ok((f, _)) => {
            let shard = (pfp % shards.len() as u64) as usize;
            for p in pending {
                let mut job =
                    SolveJob::with_timing(p.id, f.clone(), p.b, p.nrhs, p.submitted, p.deadline);
                job.drop_solution = p.drop_solution;
                shards[shard]
                    .submit(job)
                    .expect("solve shard closed before factor pool");
            }
        }
        Err(e) => {
            let now = Instant::now();
            let mut failed = inner.failed.lock().unwrap();
            for p in pending {
                failed.push(JobReport {
                    id: p.id,
                    status: JobStatus::Failed(e),
                    x: None,
                    wait_us: now.duration_since(p.submitted).as_micros() as u64,
                    solve_us: 0,
                    worker,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};

    fn matrix(nx: usize, ny: usize) -> Arc<CscMatrix> {
        Arc::new(gen::grid2d(nx, ny, 0.4, ValueModel::default()))
    }

    fn config(factor_workers: usize, shards: usize) -> ConcurrentConfig {
        ConcurrentConfig {
            factor_workers,
            solve_workers: 2,
            shards,
            ..ConcurrentConfig::default()
        }
    }

    #[test]
    fn factor_pool_runs_tasks_concurrently() {
        // A 2-party barrier inside two tasks deadlocks unless both run
        // at the same time on distinct workers.
        let pool = FactorPool::new(2, 4, Arc::new(Registry::new()));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for _ in 0..2 {
            let b = Arc::clone(&barrier);
            assert!(pool
                .spawn(Box::new(move |_| {
                    b.wait();
                }))
                .is_ok());
        }
        pool.finish();
    }

    #[test]
    fn independent_factorizations_overlap_in_time() {
        // Acceptance criterion: two different-pattern factorizations
        // must execute concurrently on the factor pool. Both matrices
        // are large enough (debug build: hundreds of ms each) that the
        // second worker dequeues its task long before the first
        // finishes, so the recorded intervals must intersect.
        let svc = ConcurrentService::new(config(2, 2));
        let a = matrix(44, 44);
        let b = matrix(44, 43);
        assert_ne!(a.pattern_fingerprint(), b.pattern_fingerprint());
        svc.prefetch(&a);
        svc.prefetch(&b);
        svc.factorization_blocking(&a).unwrap();
        svc.factorization_blocking(&b).unwrap();
        let report = svc.finish();
        let iv = &report.factor_intervals;
        assert_eq!(iv.len(), 2, "one interval per pattern");
        assert_ne!(iv[0].pattern_fp, iv[1].pattern_fp);
        assert_ne!(iv[0].worker, iv[1].worker);
        let overlap = iv[0].start_us < iv[1].end_us && iv[1].start_us < iv[0].end_us;
        assert!(
            overlap,
            "factorizations did not overlap: [{}, {}] vs [{}, {}]",
            iv[0].start_us, iv[0].end_us, iv[1].start_us, iv[1].end_us
        );
    }

    #[test]
    fn single_flight_dedup_returns_same_handle() {
        let svc = ConcurrentService::new(config(1, 1));
        let a = matrix(24, 24);
        let factors: Vec<Factorization> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| svc.factorization_blocking(&a).unwrap().0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All four callers share the identical factorization object.
        for f in &factors[1..] {
            assert!(
                std::ptr::eq(factors[0].lu() as *const _, f.lu() as *const _),
                "single-flight returned distinct factorizations"
            );
        }
        let report = svc.finish();
        // Exactly one symbolic analysis ran for the pattern.
        assert_eq!(report.cache.analysis_misses, 1);
        assert_eq!(report.factor_tasks, 1);
        assert_eq!(report.ahead.demand_flights, 1);
    }

    #[test]
    fn refactor_ahead_serves_dependent_solves() {
        let svc = ConcurrentService::new(config(2, 2));
        let a = matrix(12, 12);
        let n = a.ncols();
        // Warm the pattern (cold demand factorization)…
        svc.factorization_blocking(&a).unwrap();
        // …then new values arrive: prefetch, and solve against them.
        let a2 = Arc::new(gen::perturb_values(&a, 7));
        svc.prefetch(&a2);
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a2.matvec(&xt);
        svc.submit_solve(0, &a2, b, 1, None, false);
        let report = svc.finish();
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].status, JobStatus::Solved);
        let x = report.reports[0].x.as_ref().unwrap();
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "err {err:.3e}");
        let ahead = report.ahead;
        assert_eq!(ahead.spec_started, 1);
        assert_eq!(
            ahead.hits_ready + ahead.hits_inflight,
            1,
            "the dependent solve must be served by the speculative flight: {ahead:?}"
        );
        assert_eq!(ahead.demand_flights, 1, "only the warmup was demand");
        // The speculative refactor reused the cached analysis.
        assert_eq!(report.cache.refactors, 1);
    }

    #[test]
    fn eviction_racing_refactor_ahead_still_solves() {
        // Tiny budget on a single shard: pressure patterns evict the
        // prefetched entry while solves are racing in. Correctness must
        // survive (the flight/cache recheck re-resolves), with
        // evictions actually observed.
        let a = matrix(10, 10);
        let n = a.ncols();
        let cfg = ConcurrentConfig {
            factor_workers: 2,
            solve_workers: 2,
            shards: 1,
            cache_bytes: 200_000,
            ..ConcurrentConfig::default()
        };
        let svc = ConcurrentService::new(cfg);
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut id = 0;
        for round in 0..6 {
            let av = Arc::new(gen::perturb_values(&a, round));
            svc.prefetch(&av);
            // pressure: distinct larger patterns flood the shard
            for k in 0..3 {
                let p = matrix(11 + round as usize, 9 + k);
                svc.factorization_blocking(&p).unwrap();
            }
            let b = av.matvec(&xt);
            svc.submit_solve(id, &av, b, 1, None, false);
            id += 1;
        }
        let report = svc.finish();
        assert!(report.cache.evictions > 0, "no eviction pressure");
        assert_eq!(report.reports.len(), id);
        for r in &report.reports {
            assert_eq!(r.status, JobStatus::Solved, "request {}", r.id);
            let x = r.x.as_ref().unwrap();
            let err = x
                .iter()
                .zip(&xt)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            assert!(err < 1e-6, "request {} err {err:.3e}", r.id);
        }
    }

    #[test]
    fn sharded_cache_keeps_deterministic_lru_per_shard() {
        use splu_core::FactorOptions;
        let build = |nx: usize, ny: usize| {
            let a = gen::grid2d(nx, ny, 0.4, ValueModel::default());
            let an = Analysis::of(&a, FactorOptions::default());
            let f = an.factorize(&a).unwrap();
            (a, an, f)
        };
        let (a, an_a, fa) = build(8, 8);
        let (b, an_b, fb) = build(8, 7);
        let (c, an_c, fc) = build(8, 6);
        let one = an_a.approx_bytes() + fa.storage_bytes();
        let cache = ShardedCache::new(1, one * 2 + one / 2);
        let (pa, pb, pc) = (
            a.pattern_fingerprint(),
            b.pattern_fingerprint(),
            c.pattern_fingerprint(),
        );
        cache.with_shard(pa, |s| s.insert_factor(&an_a, fa));
        cache.with_shard(pb, |s| s.insert_factor(&an_b, fb));
        // Touch A so B is the deterministic LRU victim when C lands.
        assert!(cache.with_shard(pa, |s| s.get_analysis(pa)).is_some());
        cache.with_shard(pc, |s| s.insert_factor(&an_c, fc));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.with_shard(pb, |s| s.get_analysis(pb)).is_none());
        assert!(cache.with_shard(pa, |s| s.get_analysis(pa)).is_some());
        assert!(cache.with_shard(pc, |s| s.get_analysis(pc)).is_some());
        let snaps = cache.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].entries, 2);
        assert!(snaps[0].lookups >= 7);
    }

    #[test]
    fn deadline_flows_through_flight_and_expires() {
        // deadline_us = 0 on a cold pattern: the deadline is fixed at
        // admission, survives the flight hand-off, and the solve pool
        // deterministically expires it after the factor lands.
        let svc = ConcurrentService::new(config(1, 1));
        let a = matrix(8, 8);
        let n = a.ncols();
        svc.submit_solve(0, &a, vec![1.0; n], 1, Some(0), false);
        svc.submit_solve(1, &a, vec![1.0; n], 1, None, false);
        let report = svc.finish();
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.reports[0].status, JobStatus::DeadlineExpired);
        // wait_us spans admission -> flight -> dequeue, so it includes
        // the factorization time.
        assert!(report.reports[0].wait_us > 0);
        assert_eq!(report.reports[1].status, JobStatus::Solved);
        assert_eq!(report.queue.expired, 1);
    }

    #[test]
    fn failed_factorization_reports_every_parked_solve() {
        // A numerically singular matrix: the flight fails and every
        // solve parked on it must still produce a (Failed) report.
        let a = matrix(6, 6);
        let sing = Arc::new(gen::zero_column_values(&a, 3));
        let svc = ConcurrentService::new(config(1, 1));
        let n = a.ncols();
        svc.submit_solve(0, &sing, vec![1.0; n], 1, None, false);
        svc.submit_solve(1, &sing, vec![1.0; n], 1, None, false);
        let report = svc.finish();
        assert_eq!(report.reports.len(), 2);
        for r in &report.reports {
            assert!(
                matches!(r.status, JobStatus::Failed(_)),
                "request {}: {:?}",
                r.id,
                r.status
            );
        }
    }

    #[test]
    fn solves_route_to_pattern_shard_pools() {
        let svc = ConcurrentService::new(ConcurrentConfig {
            factor_workers: 2,
            solve_workers: 4,
            shards: 2,
            ..ConcurrentConfig::default()
        });
        let a = matrix(9, 9);
        let b = matrix(9, 8);
        let n = a.ncols();
        for id in 0..4 {
            svc.submit_solve(id, &a, vec![1.0; n], 1, None, true);
            svc.submit_solve(4 + id, &b, vec![1.0; b.ncols()], 1, None, true);
        }
        let report = svc.finish();
        assert_eq!(report.queue.solved, 8);
        assert_eq!(report.reports.len(), 8);
        // drop_solution was set on all: solved without retained x
        assert!(report.reports.iter().all(|r| r.x.is_none()));
        // both shards saw cache traffic iff the fingerprints split
        let total_lookups: u64 = report.shards.iter().map(|s| s.lookups).sum();
        assert!(total_lookups >= 8);
    }
}
