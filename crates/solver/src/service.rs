//! [`SolverService`] — the factorization cache behind a thread-safe
//! get-or-compute facade.
//!
//! The service owns a [`FactorCache`] under a mutex and exposes one
//! entry point, [`SolverService::factorization`], which returns a ready
//! [`Factorization`] for any square matrix together with the
//! [`Reuse`] level that produced it. Symbolic and numeric work runs
//! *outside* the lock, so a slow factorization never blocks cache hits
//! on other patterns; the (benign, deterministic-per-thread) cost is
//! that two threads racing on the same unseen pattern may both compute
//! it — the second insert simply refreshes the entry.

use crate::cache::{CacheConfig, CacheStats, FactorCache};
use crate::{Analysis, Factorization};
use splu_core::{FactorOptions, SolverError};
use splu_probe::Probe;
use splu_sparse::CscMatrix;
use std::sync::Mutex;

/// Configuration for [`SolverService`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Cache capacity.
    pub cache: CacheConfig,
    /// Pipeline options used for every analysis/factorization.
    pub options: FactorOptions,
}

/// How much cached work a [`SolverService::factorization`] call reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reuse {
    /// Pattern and values both matched: the cached factorization was
    /// returned without any numeric work.
    Full,
    /// Pattern matched: symbolic analysis was reused, only the numeric
    /// factorization ran.
    Analysis,
    /// Unseen pattern: full symbolic + numeric pipeline.
    None,
}

impl Reuse {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Reuse::Full => "full",
            Reuse::Analysis => "analysis",
            Reuse::None => "none",
        }
    }
}

/// Thread-safe analyze/factorize front end over [`FactorCache`].
pub struct SolverService {
    cache: Mutex<FactorCache>,
    options: FactorOptions,
}

impl SolverService {
    /// New service with an empty cache.
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            cache: Mutex::new(FactorCache::new(config.cache)),
            options: config.options,
        }
    }

    /// Factorization of `a`, reusing cached symbolic/numeric work where
    /// the fingerprints allow.
    ///
    /// # Panics
    /// Panics if `a` is not square or structurally singular (analysis
    /// precondition, as for [`Analysis::of`]). Numeric singularity is a
    /// typed [`SolverError::ZeroPivot`].
    pub fn factorization(&self, a: &CscMatrix) -> Result<(Factorization, Reuse), SolverError> {
        let pattern_fp = a.pattern_fingerprint();
        let value_fp = a.value_fingerprint();

        // Level 1: full hit — same pattern and bit-identical values.
        let cached_analysis = {
            let mut cache = self.cache.lock().unwrap();
            if let Some(f) = cache.get_factor(pattern_fp, value_fp) {
                return Ok((f, Reuse::Full));
            }
            cache.get_analysis(pattern_fp)
        };

        // Level 2/3: numeric (and possibly symbolic) work off-lock.
        let (analysis, reuse) = match cached_analysis {
            Some(an) => (an, Reuse::Analysis),
            None => (Analysis::of(a, self.options), Reuse::None),
        };
        let factor = analysis.factorize(a)?;

        let mut cache = self.cache.lock().unwrap();
        match reuse {
            Reuse::Analysis => cache.note_refactor(),
            Reuse::None => cache.note_miss(),
            Reuse::Full => unreachable!(),
        }
        cache.insert_factor(&analysis, factor.clone());
        Ok((factor, reuse))
    }

    /// Convenience: factorize (with reuse) and solve one right-hand side.
    pub fn solve(&self, a: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let (f, _) = self.factorization(a)?;
        f.solve(b)
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Current resident cache size in bytes.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache.lock().unwrap().resident_bytes()
    }

    /// Export cache counters through a probe.
    pub fn export_stats(&self, probe: &Probe) {
        self.cache_stats().export(probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};

    #[test]
    fn reuse_levels_in_order() {
        let svc = SolverService::new(ServiceConfig::default());
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());

        let (_, r1) = svc.factorization(&a).unwrap();
        assert_eq!(r1, Reuse::None);
        // Identical matrix: full hit, zero numeric work.
        let (_, r2) = svc.factorization(&a).unwrap();
        assert_eq!(r2, Reuse::Full);
        // Same pattern, new values: analysis reused, numeric rerun.
        let a2 = gen::perturb_values(&a, 9);
        let (f2, r3) = svc.factorization(&a2).unwrap();
        assert_eq!(r3, Reuse::Analysis);
        assert_eq!(f2.value_fingerprint(), a2.value_fingerprint());

        let s = svc.cache_stats();
        assert_eq!(s.analysis_misses, 1);
        assert_eq!(s.factor_hits, 1);
        assert_eq!(s.refactors, 1);
    }

    #[test]
    fn service_solutions_are_accurate() {
        let svc = SolverService::new(ServiceConfig::default());
        let a = gen::random_sparse(60, 4, 0.5, ValueModel::default());
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-2).collect();
        let b = a.matvec(&xt);
        let x = svc.solve(&a, &b).unwrap();
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "err={err:.3e}");
    }

    #[test]
    fn singular_matrix_flows_as_error() {
        let svc = SolverService::new(ServiceConfig::default());
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        // Warm the pattern so the singular twin takes the refactor path.
        svc.factorization(&a).unwrap();
        let sing = gen::zero_column_values(&a, 3);
        assert!(matches!(
            svc.factorization(&sing),
            Err(SolverError::ZeroPivot { .. })
        ));
        // The failure must not poison the cache: originals still work.
        let (_, r) = svc.factorization(&a).unwrap();
        assert_eq!(r, Reuse::Full);
    }
}
