//! BENCH_solver.json regression gate.
//!
//! The bench-lu pipeline already refuses GFLOP/s drops beyond
//! `SPLU_BENCH_TOL_PCT` percent; this module applies the same
//! baseline-diff idea to the solver service record: p95 end-to-end
//! request latency must not grow past the tolerance, and the cache hit
//! rate must not fall below the recorded one. `splu serve --baseline
//! <file>` runs it after writing the fresh record.
//!
//! Latency gating needs two extra allowances the GFLOP/s gate does
//! not: the percentiles come from log2-bucketed histograms whose
//! quantiles report the *upper bound* of the containing bucket, so a
//! sample drifting marginally across a bucket boundary doubles the
//! reported p95 no matter how small the tolerance. The gate therefore
//! always allows one bucket step (`2·baseline + 1`, the next bucket's
//! upper bound) on top of the percentage tolerance — adjacent buckets
//! cannot distinguish a 1 % drift from a 99 % one, so only a ≥ two-
//! bucket (≥ 4×) jump is evidence of a real regression — plus a small
//! absolute slack ([`ABS_SLACK_US`]) so microsecond-scale workloads do
//! not flap on scheduler noise.

use splu_probe::json::{self, Value};

/// The gate-relevant numbers of one `BENCH_solver.json` document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverRecord {
    /// p95 end-to-end request latency (`latency_us.e2e.p95`),
    /// microseconds.
    pub p95_e2e_us: u64,
    /// Analysis-cache hit rate (`cache_hit_rate`), 0..=1.
    pub cache_hit_rate: f64,
    /// Goodput in requests/second (`req_per_sec`). Present only on
    /// loadgen records; gated only when both records carry it.
    pub req_per_sec: Option<f64>,
}

impl SolverRecord {
    /// Extract the gated fields from a `BENCH_solver.json` document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("bad solver record: {e}"))?;
        if v.get("bench").and_then(Value::as_str) != Some("solver_serve") {
            return Err("not a solver_serve record (missing \"bench\": \"solver_serve\")".into());
        }
        let p95_e2e_us = v
            .get("latency_us")
            .and_then(|l| l.get("e2e"))
            .and_then(|e| e.get("p95"))
            .and_then(Value::as_u64)
            .ok_or("solver record missing latency_us.e2e.p95")?;
        let cache_hit_rate = v
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .ok_or("solver record missing cache_hit_rate")?;
        let req_per_sec = v.get("req_per_sec").and_then(Value::as_f64);
        Ok(Self {
            p95_e2e_us,
            cache_hit_rate,
            req_per_sec,
        })
    }
}

/// Absolute latency slack added on top of the percentage tolerance (see
/// the module docs for why bucket quantization requires it).
pub const ABS_SLACK_US: u64 = 500;

/// Regression tolerance in percent, from `SPLU_BENCH_TOL_PCT` (same
/// knob and default as the bench-lu gate).
pub fn tolerance_pct() -> f64 {
    std::env::var("SPLU_BENCH_TOL_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0)
}

/// Gate `current` against `baseline`: p95 end-to-end latency may grow
/// at most `tol_pct` percent or one log2 bucket step (whichever is
/// larger) plus [`ABS_SLACK_US`]; the cache hit rate may fall at most
/// `tol_pct` percentage points.
pub fn gate_against(
    current: &SolverRecord,
    baseline: &SolverRecord,
    tol_pct: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    let rel_bound = baseline.p95_e2e_us as f64 * (1.0 + tol_pct / 100.0);
    let bucket_step = (2 * baseline.p95_e2e_us + 1) as f64;
    let allowed_us = rel_bound.max(bucket_step) + ABS_SLACK_US as f64;
    if current.p95_e2e_us as f64 > allowed_us {
        failures.push(format!(
            "p95 e2e latency {} us exceeds the recorded {} us by more than \
             {tol_pct}% (or one histogram bucket) + {ABS_SLACK_US} us slack",
            current.p95_e2e_us, baseline.p95_e2e_us
        ));
    }
    let hit_floor = baseline.cache_hit_rate - tol_pct / 100.0;
    if current.cache_hit_rate < hit_floor {
        failures.push(format!(
            "cache hit rate {:.4} fell more than {tol_pct} percentage points \
             below the recorded {:.4}",
            current.cache_hit_rate, baseline.cache_hit_rate
        ));
    }
    // Throughput (loadgen goodput) is gated only when both records
    // carry it, so serve records stay comparable to old baselines.
    if let (Some(cur), Some(base)) = (current.req_per_sec, baseline.req_per_sec) {
        let floor = base * (1.0 - tol_pct / 100.0);
        if cur < floor {
            failures.push(format!(
                "goodput {cur:.1} req/s fell more than {tol_pct}% below the \
                 recorded {base:.1} req/s"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "solver benchmark regression:\n  {}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(p95: u64, hit: f64) -> String {
        format!(
            "{{\"bench\": \"solver_serve\", \"latency_us\": \
             {{\"e2e\": {{\"count\": 7, \"p50\": 63, \"p95\": {p95}, \"p99\": {p95}}}}}, \
             \"cache_hit_rate\": {hit}}}"
        )
    }

    #[test]
    fn parse_extracts_gated_fields() {
        let r = SolverRecord::parse(&record(2047, 0.75)).unwrap();
        assert_eq!(r.p95_e2e_us, 2047);
        assert_eq!(r.cache_hit_rate, 0.75);
        assert_eq!(r.req_per_sec, None, "serve records carry no goodput");
    }

    #[test]
    fn goodput_is_parsed_and_gated_when_both_sides_carry_it() {
        let with_rps = |rps: f64| {
            let mut r = SolverRecord::parse(&record(4000, 0.75)).unwrap();
            r.req_per_sec = Some(rps);
            r
        };
        let loadgen = record(4000, 0.75).replace(
            "\"cache_hit_rate\"",
            "\"req_per_sec\": 5200.5, \"cache_hit_rate\"",
        );
        assert_eq!(
            SolverRecord::parse(&loadgen).unwrap().req_per_sec,
            Some(5200.5)
        );
        let base = with_rps(5000.0);
        // within 15%: ok
        assert!(gate_against(&with_rps(4300.0), &base, 15.0).is_ok());
        // beyond 15% drop: named failure
        let err = gate_against(&with_rps(4000.0), &base, 15.0).unwrap_err();
        assert!(err.contains("goodput"), "{err}");
        // asymmetric presence (old serve baseline): throughput not gated
        let mut no_rps = base;
        no_rps.req_per_sec = None;
        assert!(gate_against(&with_rps(1.0), &no_rps, 15.0).is_ok());
        assert!(gate_against(&no_rps, &base, 15.0).is_ok());
    }

    #[test]
    fn parse_rejects_foreign_and_incomplete_records() {
        assert!(SolverRecord::parse("{\"bench\": \"lu\"}").is_err());
        assert!(SolverRecord::parse("{\"bench\": \"solver_serve\"}")
            .unwrap_err()
            .contains("latency_us.e2e.p95"));
        assert!(SolverRecord::parse("not json").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = SolverRecord::parse(&record(4000, 0.75)).unwrap();
        // +15% + 500us slack on 4000us allows up to 5100us
        let cur = SolverRecord {
            p95_e2e_us: 5100,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        assert!(gate_against(&cur, &base, 15.0).is_ok());
        // a one-bucket quantization flip (8191 -> 16383: the sample
        // drifted marginally across the boundary) must not trip the
        // gate even at a tight tolerance
        let boundary_base = SolverRecord {
            p95_e2e_us: 8191,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        let next_bucket = SolverRecord {
            p95_e2e_us: 16383,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        assert!(gate_against(&next_bucket, &boundary_base, 15.0).is_ok());
        // tiny baselines are protected by the absolute slack
        let small_base = SolverRecord {
            p95_e2e_us: 3,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        let small_cur = SolverRecord {
            p95_e2e_us: 400,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        assert!(gate_against(&small_cur, &small_base, 15.0).is_ok());
    }

    #[test]
    fn gate_rejects_latency_and_hit_rate_regressions() {
        let base = SolverRecord {
            p95_e2e_us: 4000,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        // more than one bucket above the recorded 4000us (allowance:
        // max(4600, 8001) + 500 = 8501us)
        let slow = SolverRecord {
            p95_e2e_us: 9000,
            cache_hit_rate: 0.75,
            req_per_sec: None,
        };
        let err = gate_against(&slow, &base, 15.0).unwrap_err();
        assert!(err.contains("p95 e2e latency"), "{err}");
        let cold = SolverRecord {
            p95_e2e_us: 4000,
            cache_hit_rate: 0.5,
            req_per_sec: None,
        };
        let err = gate_against(&cold, &base, 15.0).unwrap_err();
        assert!(err.contains("cache hit rate"), "{err}");
        // both regress -> both named
        let both = SolverRecord {
            p95_e2e_us: 9000,
            cache_hit_rate: 0.1,
            req_per_sec: None,
        };
        let err = gate_against(&both, &base, 15.0).unwrap_err();
        assert!(err.contains("p95 e2e latency") && err.contains("cache hit rate"));
    }
}
