//! Workload files and the batch driver behind `splu serve`.
//!
//! A workload is a small line-oriented text file: `matrix` lines declare
//! named matrices (generators, value perturbations of a base pattern,
//! or a numerically singular twin), `solve` lines request solves against
//! them in order. Example:
//!
//! ```text
//! # two patterns, one singular twin
//! matrix g grid2d 12 12
//! matrix g2 perturb g 7     # same pattern as g, new values
//! matrix r random 150 4
//! matrix bad singular g     # g's pattern, one value column zeroed
//! solve g nrhs=2
//! solve g2                  # analysis reused, numeric refactor
//! solve g                   # full cache hit
//! solve r
//! solve bad                 # typed ZeroPivot, not a panic
//! solve g deadline_us=0     # deterministically past its deadline
//! ```
//!
//! [`run_batch`] feeds the requests through a [`SolverService`] (so the
//! factorization cache sees the pattern/value reuse) and a [`WorkerPool`]
//! (so solves run concurrently under admission control), then reports
//! one [`RequestOutcome`] per `solve` line. Right-hand sides are
//! manufactured from a deterministic `x_true`, so every solved request
//! carries a forward-error measurement.

use crate::queue::{JobStatus, SolveJob, WorkerPool};
use crate::service::{Reuse, ServiceConfig, SolverService};
use crate::{CacheConfig, CacheStats, FactorOptions, QueueStats};
use splu_probe::metrics::Registry;
use splu_sparse::gen::{self, ValueModel};
use splu_sparse::CscMatrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One declared matrix: name plus how to build it.
#[derive(Debug, Clone, PartialEq)]
enum MatrixSpec {
    /// `grid2d <nx> <ny>` — 5-point convection-diffusion grid.
    Grid2d { nx: usize, ny: usize },
    /// `random <n> <avg_per_col>` — random sparse with partial symmetry.
    Random { n: usize, avg_per_col: usize },
    /// `perturb <base> <seed>` — same pattern as `base`, rescaled values.
    Perturb { base: String, seed: u64 },
    /// `singular <base>` — `base` with one value column zeroed: same
    /// pattern fingerprint, numerically singular.
    Singular { base: String },
}

/// One `solve` line.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Name of the matrix to solve against.
    pub matrix: String,
    /// Number of right-hand-side columns (`nrhs=K`, default 1).
    pub nrhs: usize,
    /// Optional deadline in microseconds from submission
    /// (`deadline_us=U`; `0` is deterministically expired).
    pub deadline_us: Option<u64>,
}

/// A parsed workload: matrix declarations plus solve requests.
#[derive(Debug, Default)]
pub struct Workload {
    matrices: Vec<(String, MatrixSpec)>,
    /// Solve requests in file order; the index is the request id.
    pub requests: Vec<SolveRequest>,
}

impl Workload {
    /// Parse the workload text format. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut w = Workload::default();
        let mut names: HashMap<String, usize> = HashMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            let mut tok = line.split_whitespace();
            match tok.next() {
                Some("matrix") => {
                    let name = tok
                        .next()
                        .ok_or_else(|| format!("line {lineno}: matrix needs a name"))?
                        .to_string();
                    if names.contains_key(&name) {
                        return Err(format!("line {lineno}: duplicate matrix `{name}`"));
                    }
                    let kind = tok
                        .next()
                        .ok_or_else(|| format!("line {lineno}: matrix `{name}` needs a kind"))?;
                    let spec = match kind {
                        "grid2d" => MatrixSpec::Grid2d {
                            nx: parse_tok(&mut tok, lineno, "nx")?,
                            ny: parse_tok(&mut tok, lineno, "ny")?,
                        },
                        "random" => MatrixSpec::Random {
                            n: parse_tok(&mut tok, lineno, "n")?,
                            avg_per_col: parse_tok(&mut tok, lineno, "avg_per_col")?,
                        },
                        "perturb" => {
                            let base: String = parse_tok(&mut tok, lineno, "base")?;
                            if !names.contains_key(&base) {
                                return Err(format!("line {lineno}: unknown base matrix `{base}`"));
                            }
                            MatrixSpec::Perturb {
                                base,
                                seed: parse_tok(&mut tok, lineno, "seed")?,
                            }
                        }
                        "singular" => {
                            let base: String = parse_tok(&mut tok, lineno, "base")?;
                            if !names.contains_key(&base) {
                                return Err(format!("line {lineno}: unknown base matrix `{base}`"));
                            }
                            MatrixSpec::Singular { base }
                        }
                        other => {
                            return Err(format!(
                                "line {lineno}: unknown matrix kind `{other}` \
                                 (expected grid2d|random|perturb|singular)"
                            ))
                        }
                    };
                    names.insert(name.clone(), w.matrices.len());
                    w.matrices.push((name, spec));
                }
                Some("solve") => {
                    let matrix = tok
                        .next()
                        .ok_or_else(|| format!("line {lineno}: solve needs a matrix name"))?
                        .to_string();
                    if !names.contains_key(&matrix) {
                        return Err(format!("line {lineno}: unknown matrix `{matrix}`"));
                    }
                    let mut req = SolveRequest {
                        matrix,
                        nrhs: 1,
                        deadline_us: None,
                    };
                    for opt in tok {
                        if let Some(v) = opt.strip_prefix("nrhs=") {
                            req.nrhs = v
                                .parse()
                                .map_err(|_| format!("line {lineno}: bad nrhs `{v}`"))?;
                            if req.nrhs == 0 {
                                return Err(format!("line {lineno}: nrhs must be >= 1"));
                            }
                        } else if let Some(v) = opt.strip_prefix("deadline_us=") {
                            req.deadline_us =
                                Some(v.parse().map_err(|_| {
                                    format!("line {lineno}: bad deadline_us `{v}`")
                                })?);
                        } else {
                            return Err(format!("line {lineno}: unknown solve option `{opt}`"));
                        }
                    }
                    w.requests.push(req);
                }
                Some(other) => {
                    return Err(format!(
                        "line {lineno}: unknown directive `{other}` (expected matrix|solve)"
                    ))
                }
                None => unreachable!(),
            }
        }
        Ok(w)
    }

    /// Build every declared matrix, in declaration order.
    fn build_matrices(&self) -> HashMap<String, CscMatrix> {
        let vm = ValueModel::default();
        let mut built: HashMap<String, CscMatrix> = HashMap::new();
        for (name, spec) in &self.matrices {
            let m = match spec {
                MatrixSpec::Grid2d { nx, ny } => gen::grid2d(*nx, *ny, 0.4, vm),
                MatrixSpec::Random { n, avg_per_col } => {
                    gen::random_sparse(*n, *avg_per_col, 0.5, vm)
                }
                MatrixSpec::Perturb { base, seed } => gen::perturb_values(&built[base], *seed),
                MatrixSpec::Singular { base } => {
                    let b = &built[base];
                    gen::zero_column_values(b, b.ncols() / 2)
                }
            };
            built.insert(name.clone(), m);
        }
        built
    }
}

fn parse_tok<T: std::str::FromStr>(
    tok: &mut std::str::SplitWhitespace<'_>,
    lineno: usize,
    what: &str,
) -> Result<T, String> {
    let s = tok
        .next()
        .ok_or_else(|| format!("line {lineno}: missing {what}"))?;
    s.parse()
        .map_err(|_| format!("line {lineno}: bad {what} `{s}`"))
}

/// Knobs for [`run_batch`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Solve worker threads.
    pub workers: usize,
    /// Work-queue capacity (admission limit).
    pub queue_cap: usize,
    /// Factorization-cache byte budget.
    pub cache_bytes: usize,
    /// Pipeline options.
    pub options: FactorOptions,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_cap: 8,
            cache_bytes: CacheConfig::default().capacity_bytes,
            options: FactorOptions::default(),
        }
    }
}

/// Per-request result.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Request id (index of the `solve` line).
    pub id: usize,
    /// Matrix name the request solved against.
    pub matrix: String,
    /// Right-hand-side columns.
    pub nrhs: usize,
    /// Cache reuse level of the factorization (`None` if factorization
    /// itself failed before reaching the cache insert).
    pub reuse: Option<Reuse>,
    /// Terminal status label: `solved`, `deadline_expired`, `failed`, or
    /// `factorization_failed`.
    pub status: String,
    /// Error detail for failed requests.
    pub error: Option<String>,
    /// Forward error `max_i |x_i - x_true_i|` over all columns (solved
    /// requests only).
    pub max_err: Option<f64>,
    /// Queue wait in microseconds (requests that reached the pool).
    pub wait_us: u64,
    /// Solve time in microseconds (solved requests).
    pub solve_us: u64,
    /// Driver-side factorization (or cache-lookup) time in microseconds.
    pub factor_us: u64,
}

/// Everything `splu serve` reports: per-request outcomes plus cache and
/// queue counters.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per `solve` request, in request order.
    pub outcomes: Vec<RequestOutcome>,
    /// Factorization-cache counters.
    pub cache: CacheStats,
    /// Work-queue counters.
    pub queue: QueueStats,
    /// Resident cache bytes at the end of the batch.
    pub cache_resident_bytes: usize,
    /// Batch metrics registry: `splu_request_us` (end-to-end per
    /// request), `splu_factor_us`, `splu_solve_us`, `splu_solve_wait_us`
    /// histograms plus queue/worker/cache counters — the source of the
    /// p50/p95/p99 fields in [`BatchReport::to_json`] and of
    /// `splu serve --metrics-out`.
    pub metrics: Arc<Registry>,
}

impl BatchReport {
    /// Count of outcomes with the given status label.
    pub fn count(&self, status: &str) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }

    /// Largest forward error over all solved requests.
    pub fn max_err(&self) -> f64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.max_err)
            .fold(0.0, f64::max)
    }

    /// Render the report as a JSON object (the `BENCH_solver.json`
    /// format emitted by `verify.sh`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"solver_serve\",\n");
        out.push_str(&format!("  \"requests\": {},\n", self.outcomes.len()));
        for status in [
            "solved",
            "deadline_expired",
            "failed",
            "factorization_failed",
        ] {
            out.push_str(&format!("  \"{}\": {},\n", status, self.count(status)));
        }
        out.push_str(&format!("  \"max_err\": {:e},\n", self.max_err()));
        let total_solve_us: u64 = self.outcomes.iter().map(|o| o.solve_us).sum();
        out.push_str(&format!("  \"total_solve_us\": {total_solve_us},\n"));
        out.push_str("  \"latency_us\": {\n");
        let phases = [
            ("e2e", "splu_request_us"),
            ("solve", "splu_solve_us"),
            ("wait", "splu_solve_wait_us"),
        ];
        for (i, (key, hist)) in phases.iter().enumerate() {
            let s = self.metrics.histogram_summary(hist);
            out.push_str(&format!(
                "    \"{key}\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}\n",
                s.count,
                s.p50,
                s.p95,
                s.p99,
                if i + 1 < phases.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"cache_hit_rate\": {:.6},\n",
            self.cache.hit_rate()
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"analysis_hits\": {}, \"analysis_misses\": {}, \
             \"factor_hits\": {}, \"refactors\": {}, \"evictions\": {}, \
             \"resident_bytes\": {}}},\n",
            self.cache.analysis_hits,
            self.cache.analysis_misses,
            self.cache.factor_hits,
            self.cache.refactors,
            self.cache.evictions,
            self.cache_resident_bytes,
        ));
        out.push_str(&format!(
            "  \"queue\": {{\"accepted\": {}, \"rejected_full\": {}, \
             \"expired\": {}, \"solved\": {}, \"failed\": {}}},\n",
            self.queue.accepted,
            self.queue.rejected_full,
            self.queue.expired,
            self.queue.solved,
            self.queue.failed,
        ));
        out.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let reuse = o
                .reuse
                .map_or("null".to_string(), |r| format!("\"{}\"", r.label()));
            let max_err = o.max_err.map_or("null".to_string(), |e| format!("{e:e}"));
            let error = o
                .error
                .as_ref()
                .map_or("null".to_string(), |e| format!("{:?}", e));
            out.push_str(&format!(
                "    {{\"id\": {}, \"matrix\": {:?}, \"nrhs\": {}, \"reuse\": {}, \
                 \"status\": {:?}, \"error\": {}, \"max_err\": {}, \
                 \"wait_us\": {}, \"solve_us\": {}}}{}\n",
                o.id,
                o.matrix,
                o.nrhs,
                reuse,
                o.status,
                error,
                max_err,
                o.wait_us,
                o.solve_us,
                if i + 1 < self.outcomes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Deterministic synthetic solution for request `id`, column `c`.
fn x_true(n: usize, nrhs: usize, id: usize) -> Vec<f64> {
    let mut x = vec![0.0; n * nrhs];
    for c in 0..nrhs {
        for i in 0..n {
            x[c * n + i] = ((i * 7 + c * 13 + id * 31) % 17) as f64 * 0.25 - 2.0;
        }
    }
    x
}

/// Run a parsed workload through the solver service and worker pool.
///
/// Factorizations run on the driver thread (populating the cache in
/// request order, so reuse counters are deterministic); solves run on
/// the pool. Submission uses the blocking [`WorkerPool::submit`], so
/// queue capacity provides back-pressure rather than data loss.
pub fn run_batch(workload: &Workload, config: &BatchConfig) -> BatchReport {
    let matrices = workload.build_matrices();
    let service = SolverService::new(ServiceConfig {
        cache: CacheConfig {
            capacity_bytes: config.cache_bytes,
        },
        options: config.options,
    });
    let pool = WorkerPool::new(config.workers, config.queue_cap);
    let metrics = pool.metrics();
    let factor_hist = metrics.histogram("splu_factor_us");

    struct Pending {
        x_true: Vec<f64>,
    }
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(workload.requests.len());
    let mut pending: HashMap<usize, Pending> = HashMap::new();

    for (id, req) in workload.requests.iter().enumerate() {
        let a = &matrices[&req.matrix];
        let n = a.ncols();
        let mut outcome = RequestOutcome {
            id,
            matrix: req.matrix.clone(),
            nrhs: req.nrhs,
            reuse: None,
            status: String::new(),
            error: None,
            max_err: None,
            wait_us: 0,
            solve_us: 0,
            factor_us: 0,
        };
        let t_factor = Instant::now();
        let factorized = service.factorization(a);
        outcome.factor_us = t_factor.elapsed().as_micros() as u64;
        factor_hist.record(outcome.factor_us);
        match factorized {
            Err(e) => {
                outcome.status = "factorization_failed".into();
                outcome.error = Some(e.to_string());
            }
            Ok((factor, reuse)) => {
                outcome.reuse = Some(reuse);
                let xt = x_true(n, req.nrhs, id);
                let mut b = vec![0.0; n * req.nrhs];
                for c in 0..req.nrhs {
                    a.matvec_into(&xt[c * n..(c + 1) * n], &mut b[c * n..(c + 1) * n]);
                }
                let job = SolveJob::new(id, factor, b, req.nrhs, req.deadline_us);
                if pool.submit(job).is_err() {
                    unreachable!("pool closed during submission");
                }
                pending.insert(id, Pending { x_true: xt });
                outcome.status = "pending".into();
            }
        }
        outcomes.push(outcome);
    }

    let (reports, queue_stats) = pool.finish();
    let request_hist = metrics.histogram("splu_request_us");
    for r in reports {
        let p = &pending[&r.id];
        let o = &mut outcomes[r.id];
        o.wait_us = r.wait_us;
        o.solve_us = r.solve_us;
        o.status = r.status.label().into();
        // End-to-end latency the client saw: driver-side factorization
        // (or cache lookup) + queue wait + solve.
        request_hist.record(o.factor_us + o.wait_us + o.solve_us);
        match r.status {
            JobStatus::Solved => {
                let x = r.x.as_ref().expect("solved job carries a solution");
                let err = x
                    .iter()
                    .zip(&p.x_true)
                    .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
                o.max_err = Some(err);
            }
            JobStatus::Failed(e) => o.error = Some(e.to_string()),
            JobStatus::DeadlineExpired => {}
        }
    }

    let cache = service.cache_stats();
    metrics
        .counter("splu_cache_analysis_hits_total")
        .add(cache.analysis_hits);
    metrics
        .counter("splu_cache_analysis_misses_total")
        .add(cache.analysis_misses);
    metrics
        .counter("splu_cache_factor_hits_total")
        .add(cache.factor_hits);
    metrics
        .counter("splu_cache_refactors_total")
        .add(cache.refactors);
    metrics
        .counter("splu_cache_evictions_total")
        .add(cache.evictions);

    BatchReport {
        outcomes,
        cache,
        queue: queue_stats,
        cache_resident_bytes: service.cache_resident_bytes(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKLOAD: &str = "\
# mixed two-pattern workload
matrix g grid2d 9 9
matrix g2 perturb g 7
matrix r random 120 4
matrix bad singular g
solve g nrhs=2
solve g
solve g2
solve r
solve bad
solve g2 deadline_us=0
solve r nrhs=3
solve g2
";

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Workload::parse("solve nowhere").is_err());
        assert!(Workload::parse("matrix a grid2d 3").is_err());
        assert!(Workload::parse("matrix a grid2d 3 3\nmatrix a grid2d 3 3").is_err());
        assert!(Workload::parse("matrix a perturb missing 1").is_err());
        assert!(Workload::parse("matrix a grid2d 3 3\nsolve a nrhs=0").is_err());
        assert!(Workload::parse("bogus line").is_err());
    }

    #[test]
    fn parse_accepts_comments_and_options() {
        let w = Workload::parse(WORKLOAD).unwrap();
        assert_eq!(w.matrices.len(), 4);
        assert_eq!(w.requests.len(), 8);
        assert_eq!(w.requests[0].nrhs, 2);
        assert_eq!(w.requests[5].deadline_us, Some(0));
    }

    #[test]
    fn mixed_batch_end_to_end() {
        let w = Workload::parse(WORKLOAD).unwrap();
        let report = run_batch(&w, &BatchConfig::default());
        assert_eq!(report.outcomes.len(), 8);

        // The singular matrix fails factorization with a typed error.
        assert_eq!(report.outcomes[4].status, "factorization_failed");
        assert!(report.outcomes[4]
            .error
            .as_ref()
            .unwrap()
            .contains("zero pivot"));
        // The zero-deadline request is rejected by deadline, never solved.
        assert_eq!(report.outcomes[5].status, "deadline_expired");
        assert_eq!(report.queue.expired, 1);
        // Everything else solves accurately.
        assert_eq!(report.count("solved"), 6);
        assert!(report.max_err() < 1e-7, "max_err={:.3e}", report.max_err());

        // Cache reuse: g misses, repeat g full-hits, g2 reuses analysis
        // (new values under the cached symbolic analysis).
        assert_eq!(report.outcomes[0].reuse, Some(Reuse::None));
        assert_eq!(report.outcomes[1].reuse, Some(Reuse::Full));
        assert_eq!(report.outcomes[2].reuse, Some(Reuse::Analysis));
        assert_eq!(report.outcomes[3].reuse, Some(Reuse::None));
        assert_eq!(report.outcomes[5].reuse, Some(Reuse::Full));
        assert_eq!(report.outcomes[7].reuse, Some(Reuse::Full));
        let c = report.cache;
        assert_eq!(c.analysis_misses, 2, "two distinct patterns");
        assert_eq!(c.factor_hits, 4, "repeat requests hit the factor cache");
        assert_eq!(
            c.refactors, 1,
            "perturbed values refactor under cached analysis"
        );

        // JSON renders and contains the headline counters.
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"solver_serve\""));
        assert!(json.contains("\"solved\": 6"));
        assert!(json.contains("\"deadline_expired\": 1"));
        assert!(json.contains("\"factorization_failed\": 1"));
        // …and the new percentile block.
        assert!(json.contains("\"latency_us\""));
        assert!(json.contains("\"p50\""));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"cache_hit_rate\": 0.750000"));

        // The batch registry saw every request that reached the pool
        // (8 requests minus the failed factorization).
        let e2e = report.metrics.histogram_summary("splu_request_us");
        assert_eq!(e2e.count, 7);
        assert!(e2e.p99 > 0, "cold factorizations dominate the tail");
        assert_eq!(
            report
                .metrics
                .counter_value("splu_cache_analysis_misses_total"),
            2
        );
        assert_eq!(
            report.metrics.counter_value("splu_deadline_expired_total"),
            1
        );
        // the metrics snapshot exporters render without panicking
        assert!(report.metrics.prometheus_text().contains("splu_request_us"));
        assert!(report.metrics.json_snapshot().contains("splu_solve_us"));
    }
}
