//! Pattern-keyed factorization cache with a byte budget.
//!
//! Keyed by the [`pattern fingerprint`](splu_sparse::CscMatrix::pattern_fingerprint):
//! one entry per sparsity pattern holds the reusable [`Analysis`] plus
//! (optionally) the most recent [`Factorization`], tagged with its value
//! fingerprint. A lookup therefore distinguishes three reuse levels:
//!
//! 1. **full hit** — same pattern *and* same values: return the cached
//!    factorization, no numeric work at all;
//! 2. **analysis hit** — same pattern, new values: re-run only the
//!    numeric factorization against the cached symbolic analysis (the
//!    paper's analyze-once/factorize-many payoff);
//! 3. **miss** — unseen pattern: full symbolic + numeric pipeline.
//!
//! Eviction is LRU over a **logical clock** (no wall time, no
//! randomness — behaviour is bit-for-bit deterministic) and is driven by
//! a configurable capacity in bytes, using the factor-storage accounting
//! from `splu-core` plus an estimate of the symbolic products. Counters
//! for every transition are kept in [`CacheStats`] and can be exported
//! through a `splu-probe` [`Probe`](splu_probe::Probe).

use crate::{Analysis, Factorization};
use splu_probe::Probe;
use std::collections::HashMap;

/// Capacity configuration for [`FactorCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Byte budget for resident entries (analysis estimate + numeric
    /// factor storage). After any insertion, least-recently-used entries
    /// are evicted until the total fits — except the newest entry, which
    /// is always retained even if it alone exceeds the budget (evicting
    /// it would make the cache useless for every oversized problem).
    pub capacity_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // Generous default: roughly a few hundred moderate test factors.
        Self {
            capacity_bytes: 256 << 20,
        }
    }
}

/// Monotonic counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a cached analysis for the pattern.
    pub analysis_hits: u64,
    /// Lookups that had to run symbolic analysis from scratch.
    pub analysis_misses: u64,
    /// Lookups that found a factorization with matching value
    /// fingerprint (no numeric work needed).
    pub factor_hits: u64,
    /// Numeric refactorizations performed against a cached analysis.
    pub refactors: u64,
    /// Entries evicted to satisfy the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Export the counters through a probe (they appear in the flight
    /// recorder's per-processor counter table and the run summary).
    pub fn export(&self, probe: &Probe) {
        probe.count("solver_cache_analysis_hit", self.analysis_hits);
        probe.count("solver_cache_analysis_miss", self.analysis_misses);
        probe.count("solver_cache_factor_hit", self.factor_hits);
        probe.count("solver_cache_refactor", self.refactors);
        probe.count("solver_cache_eviction", self.evictions);
    }

    /// Fraction of lookups that reused cached work — either a full
    /// factor hit or a cached analysis (numeric refactor only). 0.0 when
    /// no lookups happened. The headline reuse statistic the
    /// `splu serve` regression gate tracks.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.analysis_hits + self.factor_hits;
        let lookups = hits + self.analysis_misses;
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }
}

struct Entry {
    analysis: Analysis,
    /// Most recent factorization for this pattern, if still resident.
    factor: Option<Factorization>,
    /// Logical-clock timestamp of the last touch (insert or lookup).
    last_used: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.analysis.approx_bytes() + self.factor.as_ref().map_or(0, Factorization::storage_bytes)
    }
}

/// LRU factorization cache keyed by pattern fingerprint.
///
/// Not internally synchronised — [`SolverService`](crate::SolverService)
/// wraps it in a mutex for concurrent use.
pub struct FactorCache {
    config: CacheConfig,
    entries: HashMap<u64, Entry>,
    clock: u64,
    resident_bytes: usize,
    stats: CacheStats,
}

impl FactorCache {
    /// Empty cache with the given capacity.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            entries: HashMap::new(),
            clock: 0,
            resident_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of resident pattern entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current resident size in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Cached analysis for `pattern_fp`, touching the entry. Counts an
    /// analysis hit; absence is *not* counted (use [`Self::note_miss`]
    /// when the caller goes on to analyze from scratch).
    pub fn get_analysis(&mut self, pattern_fp: u64) -> Option<Analysis> {
        let now = self.tick();
        match self.entries.get_mut(&pattern_fp) {
            Some(e) => {
                e.last_used = now;
                self.stats.analysis_hits += 1;
                Some(e.analysis.clone())
            }
            None => None,
        }
    }

    /// Record that a lookup missed and a fresh analysis was computed.
    pub fn note_miss(&mut self) {
        self.stats.analysis_misses += 1;
    }

    /// Record that a numeric refactorization ran against a cached
    /// analysis.
    pub fn note_refactor(&mut self) {
        self.stats.refactors += 1;
    }

    /// Cached factorization for exactly (`pattern_fp`, `value_fp`),
    /// touching the entry and counting a factor hit on success.
    pub fn get_factor(&mut self, pattern_fp: u64, value_fp: u64) -> Option<Factorization> {
        let now = self.tick();
        let e = self.entries.get_mut(&pattern_fp)?;
        let f = e.factor.as_ref()?;
        if f.value_fingerprint() != value_fp {
            return None;
        }
        e.last_used = now;
        self.stats.factor_hits += 1;
        Some(f.clone())
    }

    /// Insert (or refresh) the analysis for its pattern, then enforce the
    /// byte budget.
    pub fn insert_analysis(&mut self, analysis: Analysis) {
        let now = self.tick();
        let fp = analysis.fingerprint();
        let entry = self.entries.entry(fp).or_insert_with(|| Entry {
            analysis: analysis.clone(),
            factor: None,
            last_used: now,
        });
        entry.last_used = now;
        self.recompute_bytes();
        self.evict_over_budget(fp);
    }

    /// Insert a factorization (and its analysis, if the pattern is not
    /// yet resident), replacing any previous factor for the pattern,
    /// then enforce the byte budget.
    pub fn insert_factor(&mut self, analysis: &Analysis, factor: Factorization) {
        let now = self.tick();
        let fp = factor.pattern_fingerprint();
        debug_assert_eq!(fp, analysis.fingerprint());
        let entry = self.entries.entry(fp).or_insert_with(|| Entry {
            analysis: analysis.clone(),
            factor: None,
            last_used: now,
        });
        entry.factor = Some(factor);
        entry.last_used = now;
        self.recompute_bytes();
        self.evict_over_budget(fp);
    }

    /// Drop everything (counters are retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }

    fn recompute_bytes(&mut self) {
        self.resident_bytes = self.entries.values().map(Entry::bytes).sum();
    }

    /// Evict least-recently-used entries until the budget is met. The
    /// entry `keep` (the one just touched) is never evicted.
    fn evict_over_budget(&mut self, keep: u64) {
        while self.resident_bytes > self.config.capacity_bytes && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(fp, _)| **fp != keep)
                .min_by_key(|(fp, e)| (e.last_used, **fp))
                .map(|(fp, _)| *fp);
            let Some(fp) = victim else { break };
            if let Some(e) = self.entries.remove(&fp) {
                self.resident_bytes -= e.bytes();
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_core::FactorOptions;
    use splu_sparse::gen::{self, ValueModel};

    fn analysis_of(nx: usize, ny: usize) -> (splu_sparse::CscMatrix, Analysis) {
        let a = gen::grid2d(nx, ny, 0.4, ValueModel::default());
        let an = Analysis::of(&a, FactorOptions::default());
        (a, an)
    }

    #[test]
    fn same_pattern_hits_analysis_and_factor() {
        let (a, an) = analysis_of(7, 7);
        let mut cache = FactorCache::new(CacheConfig::default());
        assert!(cache.get_analysis(a.pattern_fingerprint()).is_none());
        cache.note_miss();
        let f = an.factorize(&a).unwrap();
        cache.insert_factor(&an, f);

        // Same pattern, same values: full hit.
        let hit = cache.get_factor(a.pattern_fingerprint(), a.value_fingerprint());
        assert!(hit.is_some());
        // Same pattern, new values: analysis hit, factor miss.
        let a2 = gen::perturb_values(&a, 11);
        assert!(cache
            .get_factor(a2.pattern_fingerprint(), a2.value_fingerprint())
            .is_none());
        assert!(cache.get_analysis(a2.pattern_fingerprint()).is_some());

        let s = cache.stats();
        assert_eq!(s.analysis_misses, 1);
        assert_eq!(s.factor_hits, 1);
        assert_eq!(s.analysis_hits, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn pattern_change_misses() {
        let (a, an) = analysis_of(6, 6);
        let (b, _) = analysis_of(6, 5);
        let mut cache = FactorCache::new(CacheConfig::default());
        cache.insert_factor(&an, an.factorize(&a).unwrap());
        assert_ne!(a.pattern_fingerprint(), b.pattern_fingerprint());
        assert!(cache.get_analysis(b.pattern_fingerprint()).is_none());
        assert!(cache
            .get_factor(b.pattern_fingerprint(), b.value_fingerprint())
            .is_none());
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let (a, an_a) = analysis_of(8, 8);
        let (b, an_b) = analysis_of(8, 7);
        let (c, an_c) = analysis_of(8, 6);
        let fa = an_a.factorize(&a).unwrap();
        let fb = an_b.factorize(&b).unwrap();
        let fc = an_c.factorize(&c).unwrap();
        let one = an_a.approx_bytes() + fa.storage_bytes();
        // Budget sized for roughly two entries of this scale.
        let cap = one * 2 + one / 2;
        let mut cache = FactorCache::new(CacheConfig {
            capacity_bytes: cap,
        });
        cache.insert_factor(&an_a, fa);
        cache.insert_factor(&an_b, fb);
        // Touch A so B becomes the LRU victim.
        assert!(cache.get_analysis(a.pattern_fingerprint()).is_some());
        cache.insert_factor(&an_c, fc);
        assert!(cache.resident_bytes() <= cap, "budget violated");
        assert_eq!(cache.stats().evictions, 1);
        // B (least recently used) was evicted; A and C remain.
        assert!(cache.get_analysis(b.pattern_fingerprint()).is_none());
        assert!(cache.get_analysis(a.pattern_fingerprint()).is_some());
        assert!(cache.get_analysis(c.pattern_fingerprint()).is_some());
    }

    #[test]
    fn oversized_single_entry_is_retained() {
        let (a, an) = analysis_of(6, 6);
        let f = an.factorize(&a).unwrap();
        let mut cache = FactorCache::new(CacheConfig { capacity_bytes: 1 });
        cache.insert_factor(&an, f);
        assert_eq!(cache.len(), 1);
        assert!(cache
            .get_factor(a.pattern_fingerprint(), a.value_fingerprint())
            .is_some());
    }

    #[test]
    fn value_change_replaces_factor_in_place() {
        let (a, an) = analysis_of(7, 6);
        let mut cache = FactorCache::new(CacheConfig::default());
        cache.insert_factor(&an, an.factorize(&a).unwrap());
        let a2 = gen::perturb_values(&a, 5);
        let f2 = an.factorize(&a2).unwrap();
        cache.insert_factor(&an, f2);
        assert_eq!(cache.len(), 1);
        // Old values no longer hit; new values do.
        assert!(cache
            .get_factor(a.pattern_fingerprint(), a.value_fingerprint())
            .is_none());
        assert!(cache
            .get_factor(a2.pattern_fingerprint(), a2.value_fingerprint())
            .is_some());
    }
}
