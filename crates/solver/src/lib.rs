//! `splu-solver` — the analyze/factorize/solve **service layer** over the
//! S\* pipeline.
//!
//! The paper's central design bet — static symbolic factorization
//! computed once, before any numerics (the George–Ng row-union scheme) —
//! makes *analysis reuse* free: any sequence of matrices with the same
//! sparsity pattern (Newton steps, time-stepping, circuit simulation)
//! shares one symbolic analysis and re-runs only the numeric phase. This
//! crate turns that property into a reusable, concurrent solver service,
//! the lifecycle production solvers (SuperLU_DIST's analyze-once /
//! factorize-many drivers) expose:
//!
//! * [`Analysis`] → [`Factorization`] → [`Factorization::solve`] /
//!   [`Factorization::solve_many`] — staged handles over
//!   `splu-core`'s pipeline, identified by the pattern fingerprint from
//!   `splu-sparse`;
//! * [`cache`] — an LRU factorization cache keyed by pattern fingerprint
//!   with a configurable capacity in **bytes** (the factor-storage
//!   accounting from `splu-core`), plus hit/miss/eviction counters
//!   exportable through `splu-probe`;
//! * [`service`] — [`service::SolverService`]: the cache behind a
//!   thread-safe get-or-compute facade;
//! * [`queue`] — a bounded work queue and worker pool dispatching solve
//!   jobs over cached factorizations, with admission limits and per-job
//!   deadline rejection;
//! * [`concurrent`] — the production-scale serving layer:
//!   factorizations on their own worker pool (independent matrices
//!   factor concurrently), cache + solve queues sharded by pattern
//!   fingerprint, speculative refactor-ahead on value arrival, and
//!   single-flight dedup of concurrent same-key factorizations;
//! * [`requests`] — a small text workload format plus the batch driver
//!   behind `splu serve --requests <file>`, reporting per-request
//!   outcomes and a `BENCH_solver.json`-compatible summary with
//!   p50/p95/p99 latency percentiles from `splu-probe`'s always-on
//!   metrics registry;
//! * [`gate`] — the `SPLU_BENCH_TOL_PCT` regression gate over a recorded
//!   `BENCH_solver.json` baseline (p95 end-to-end latency, cache hit
//!   rate), run by `splu serve --baseline`.
//!
//! Everything is hand-rolled on `std` only (no crates.io access in the
//! build environment), matching the rest of the workspace.

pub mod cache;
pub mod concurrent;
pub mod gate;
pub mod queue;
pub mod requests;
pub mod service;

pub use cache::{CacheConfig, CacheStats, FactorCache};
pub use concurrent::{
    AheadStats, ConcurrentConfig, ConcurrentReport, ConcurrentService, ShardSnapshot, ShardedCache,
};
pub use gate::SolverRecord;
pub use queue::{JobReport, JobStatus, QueueStats, SolveJob, WorkerPool};
pub use requests::{run_batch, BatchConfig, BatchReport, RequestOutcome, Workload};
pub use service::{Reuse, ServiceConfig, SolverService};
pub use splu_core::{FactorOptions, SolverError};

use splu_core::{FactorizedLu, SolveWorkspace, SparseLuSolver};
use splu_sparse::CscMatrix;
use std::sync::Arc;

/// The reusable symbolic stage: transversal + ordering + static symbolic
/// factorization + supernode partition, computed once per sparsity
/// pattern. Cheap to clone (`Arc` inside) and safe to share across
/// worker threads; any matrix with the same pattern fingerprint can be
/// numerically factorized against it without redoing symbolic work.
#[derive(Clone)]
pub struct Analysis {
    solver: Arc<SparseLuSolver>,
    bytes: usize,
}

impl Analysis {
    /// Run preprocessing and symbolic analysis for `a`.
    ///
    /// # Panics
    /// Panics if `a` is not square or is *structurally* singular (no
    /// zero-free diagonal exists). Numeric singularity, by contrast, is
    /// reported as a typed [`SolverError`] at factorization time.
    pub fn of(a: &CscMatrix, options: FactorOptions) -> Self {
        let solver = Arc::new(SparseLuSolver::analyze(a, options));
        let bytes = approx_analysis_bytes(&solver);
        Self { solver, bytes }
    }

    /// Pattern fingerprint of the analyzed matrix: any matrix with this
    /// fingerprint can be factorized against this analysis.
    pub fn fingerprint(&self) -> u64 {
        self.solver.fingerprint
    }

    /// Estimated resident bytes of the symbolic products (what the cache
    /// accounts for an analysis-only entry).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Predicted factor entries (the S\* static bound).
    pub fn static_factor_nnz(&self) -> usize {
        self.solver.static_factor_nnz()
    }

    /// The underlying pipeline object, for callers that need the full
    /// symbolic detail (permutations, block pattern, …).
    pub fn solver(&self) -> &SparseLuSolver {
        &self.solver
    }

    /// Numeric factorization of the originally analyzed matrix.
    pub fn factorize_analyzed(&self) -> Result<Factorization, SolverError> {
        let lu = self.solver.factor()?;
        Ok(Factorization::new(
            lu,
            self.fingerprint(),
            self.solver.permuted.value_fingerprint(),
        ))
    }

    /// Numeric factorization of `a`, reusing this analysis — the
    /// factorize-many half of the lifecycle. `a` must share the analyzed
    /// sparsity pattern ([`SolverError::PatternMismatch`] otherwise); a
    /// numerically singular `a` returns [`SolverError::ZeroPivot`].
    pub fn factorize(&self, a: &CscMatrix) -> Result<Factorization, SolverError> {
        let lu = self.solver.refactor(a)?;
        Ok(Factorization::new(
            lu,
            self.fingerprint(),
            a.value_fingerprint(),
        ))
    }
}

/// Estimate the resident bytes of an analysis: the permuted copy of the
/// matrix plus the static structure and block-pattern metadata.
fn approx_analysis_bytes(s: &SparseLuSolver) -> usize {
    use std::mem::size_of;
    let a = &s.permuted;
    let csc =
        a.nnz() * (size_of::<u32>() + size_of::<f64>()) + (a.ncols() + 1) * size_of::<usize>();
    // static structure: row/column lists of predicted factor entries
    let structure = s.structure.factor_nnz() * size_of::<u32>();
    // block pattern metadata: row/col lists per block (≈ one u32 per
    // stored panel entry is a deliberate overestimate; masks are smaller)
    let pattern = s.pattern.storage_entries() / 8 * size_of::<u32>();
    let perms = 4 * a.ncols() * size_of::<usize>();
    csc + structure + pattern + perms
}

/// The numeric stage: a factorization ready to solve right-hand sides,
/// tagged with the (pattern, value) fingerprints that identify exactly
/// which matrix it factors. Cheap to clone and safe to share across
/// worker threads; solves are `&self` and allocation-free when the
/// caller supplies a [`SolveWorkspace`].
#[derive(Clone)]
pub struct Factorization {
    lu: Arc<FactorizedLu>,
    pattern_fingerprint: u64,
    value_fingerprint: u64,
    bytes: usize,
}

impl Factorization {
    fn new(lu: FactorizedLu, pattern_fingerprint: u64, value_fingerprint: u64) -> Self {
        let bytes = lu.storage_bytes();
        Self {
            lu: Arc::new(lu),
            pattern_fingerprint,
            value_fingerprint,
            bytes,
        }
    }

    /// Pattern fingerprint of the factored matrix.
    pub fn pattern_fingerprint(&self) -> u64 {
        self.pattern_fingerprint
    }

    /// Value fingerprint of the factored matrix (bit-exact).
    pub fn value_fingerprint(&self) -> u64 {
        self.value_fingerprint
    }

    /// Bytes of numeric factor storage (what the cache accounts).
    pub fn storage_bytes(&self) -> usize {
        self.bytes
    }

    /// The underlying factor object (stats, pivot growth, …).
    pub fn lu(&self) -> &FactorizedLu {
        &self.lu
    }

    /// Solve `A x = b` for the original matrix `A`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let mut x = vec![0.0; b.len()];
        let mut ws = SolveWorkspace::default();
        self.lu.solve_with(b, &mut x, &mut ws)?;
        Ok(x)
    }

    /// Batched solve of `nrhs` systems, `b` column-major (`b[c*n + i]` =
    /// component `i` of RHS `c`); solutions in the same layout. One
    /// blocked BLAS-3 sweep over the factors serves all columns.
    pub fn solve_many(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>, SolverError> {
        self.lu.solve_many(b, nrhs)
    }

    /// Workspace-reusing batched solve — the worker-pool hot path.
    pub fn solve_many_with(
        &self,
        b: &[f64],
        nrhs: usize,
        x: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolverError> {
        self.lu.solve_many_with(b, nrhs, x, ws)
    }

    /// Solve `Aᵀ x = b` with the same factorization.
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let mut x = vec![0.0; b.len()];
        let mut ws = SolveWorkspace::default();
        self.lu.solve_transpose_with(b, &mut x, &mut ws)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
    }

    #[test]
    fn lifecycle_analyze_factorize_solve() {
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        let n = a.ncols();
        let analysis = Analysis::of(&a, FactorOptions::default());
        let f = analysis.factorize(&a).unwrap();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.5 - 2.0).collect();
        let b = a.matvec(&xt);
        let x = f.solve(&b).unwrap();
        assert!(max_err(&x, &xt) < 1e-7);
    }

    #[test]
    fn factorize_many_against_one_analysis() {
        let a = gen::grid2d(8, 7, 0.4, ValueModel::default());
        let analysis = Analysis::of(&a, FactorOptions::default());
        for seed in 1..4u64 {
            let ak = gen::perturb_values(&a, seed);
            let f = analysis.factorize(&ak).unwrap();
            assert_eq!(f.pattern_fingerprint(), analysis.fingerprint());
            let n = ak.ncols();
            let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let b = ak.matvec(&xt);
            let x = f.solve(&b).unwrap();
            assert!(max_err(&x, &xt) < 1e-7, "seed {seed}");
        }
    }

    #[test]
    fn pattern_mismatch_is_typed() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        let other = gen::grid2d(6, 7, 0.4, ValueModel::default());
        let analysis = Analysis::of(&a, FactorOptions::default());
        assert!(matches!(
            analysis.factorize(&other),
            Err(SolverError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn singular_input_is_typed_not_a_panic() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        let sing = gen::zero_column_values(&a, a.ncols() / 2);
        assert_eq!(sing.pattern_fingerprint(), a.pattern_fingerprint());
        let analysis = Analysis::of(&a, FactorOptions::default());
        assert!(matches!(
            analysis.factorize(&sing),
            Err(SolverError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn multi_rhs_agrees_with_single() {
        let a = gen::random_sparse(70, 4, 0.5, ValueModel::default());
        let n = a.ncols();
        let analysis = Analysis::of(&a, FactorOptions::default());
        let f = analysis.factorize_analyzed().unwrap();
        let nrhs = 3;
        let b: Vec<f64> = (0..n * nrhs).map(|i| ((i % 7) as f64) - 3.0).collect();
        let xs = f.solve_many(&b, nrhs).unwrap();
        for c in 0..nrhs {
            let x1 = f.solve(&b[c * n..(c + 1) * n]).unwrap();
            assert!(max_err(&xs[c * n..(c + 1) * n], &x1) < 1e-8, "col {c}");
        }
    }

    #[test]
    fn byte_accounting_is_positive_and_ordered() {
        let a = gen::grid2d(10, 10, 0.4, ValueModel::default());
        let analysis = Analysis::of(&a, FactorOptions::default());
        let f = analysis.factorize_analyzed().unwrap();
        assert!(analysis.approx_bytes() > 0);
        // the numeric factor dominates the symbolic metadata
        assert!(f.storage_bytes() > 0);
    }
}
