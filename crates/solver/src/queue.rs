//! Bounded work queue and solve worker pool.
//!
//! The front end of the solver service: callers enqueue [`SolveJob`]s
//! (a cached [`Factorization`] plus right-hand sides), a fixed pool of
//! worker threads drains the queue, and every job produces exactly one
//! [`JobReport`]. Two admission-control mechanisms bound the work in
//! flight:
//!
//! * **capacity** — the queue holds at most `capacity` jobs;
//!   [`WorkerPool::try_submit`] rejects (returning the job) when full,
//!   while [`WorkerPool::submit`] blocks for back-pressure;
//! * **deadlines** — a job may carry a deadline; a worker that dequeues
//!   an already-expired job rejects it without solving (the classic
//!   "don't work on requests the client has given up on" rule).
//!
//! Workers reuse one [`SolveWorkspace`] and one solution buffer each, so
//! the steady state allocates only for reports. A numerically failed
//! solve is reported per-job — it never takes down the pool.
//!
//! # Deadline semantics
//!
//! A job's deadline is an *absolute instant*; expiry is checked exactly
//! once, when a worker dequeues the job (`dequeued >= deadline`). Three
//! consequences are load-bearing and must survive refactors:
//!
//! * **`deadline_us = Some(0)` is deterministically expired.** The
//!   deadline is the submission instant itself, and `Instant::now()` at
//!   dequeue can never be *before* submission, so the job is always
//!   reported [`JobStatus::DeadlineExpired`] — regardless of queue
//!   depth, worker count or scheduler luck. The serve smoke test and
//!   the workload file format rely on this as the way to exercise the
//!   expiry path reproducibly (`zero_deadline_is_deterministically_expired`).
//! * **Expiry uses `>=`, not `>`.** With `>` the zero-deadline job
//!   would race the clock: a dequeue in the same tick as submission
//!   would solve it, making the path untestable.
//! * **A solve already started is never aborted.** Deadlines gate
//!   admission to the solve, not its completion; a job that passes the
//!   check runs to its terminal `Solved`/`Failed` state.
//!
//! Jobs built through [`SolveJob::with_timing`] carry a submission
//! timestamp from an upstream admission point (e.g. the concurrent
//! service's factor flight), so `wait_us` spans the *whole* queueing
//! time the client observed, not just this pool's queue.

use crate::Factorization;
use splu_core::{SolveWorkspace, SolverError};
use splu_probe::metrics::Registry;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One solve request: factorization handle plus column-major right-hand
/// sides.
pub struct SolveJob {
    /// Caller-chosen identifier, echoed in the report.
    pub id: usize,
    /// Factorization to solve against (shared, cheap to clone).
    pub factor: Factorization,
    /// Right-hand sides, column-major `n × nrhs`.
    pub b: Vec<f64>,
    /// Number of right-hand side columns.
    pub nrhs: usize,
    /// If set, a worker that picks the job up at or after this instant
    /// rejects it without solving.
    pub deadline: Option<Instant>,
    /// Don't keep the solution vector in the report (`x` stays `None`
    /// even on success). Load benchmarks set this so a 100k-request run
    /// doesn't retain 100k solution vectors; correctness-sampled
    /// requests leave it `false`.
    pub drop_solution: bool,
    /// Submission timestamp (set by the pool, used for wait accounting).
    submitted: Instant,
}

impl std::fmt::Debug for SolveJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveJob")
            .field("id", &self.id)
            .field("n", &self.factor.lu().n())
            .field("nrhs", &self.nrhs)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl SolveJob {
    /// New job; `deadline_us` microseconds from now, `None` = no
    /// deadline. `deadline_us = Some(0)` makes the deadline the
    /// submission instant itself, so the job is deterministically
    /// expired by the time any worker sees it.
    pub fn new(
        id: usize,
        factor: Factorization,
        b: Vec<f64>,
        nrhs: usize,
        deadline_us: Option<u64>,
    ) -> Self {
        let now = Instant::now();
        Self {
            id,
            factor,
            b,
            nrhs,
            deadline: deadline_us.map(|us| now + std::time::Duration::from_micros(us)),
            drop_solution: false,
            submitted: now,
        }
    }

    /// New job with explicit timing, for upstream admission points that
    /// accepted the request earlier (e.g. while its factorization was
    /// still in flight): `wait_us` is measured from `submitted`, and
    /// `deadline` is the absolute instant fixed at admission.
    pub fn with_timing(
        id: usize,
        factor: Factorization,
        b: Vec<f64>,
        nrhs: usize,
        submitted: Instant,
        deadline: Option<Instant>,
    ) -> Self {
        Self {
            id,
            factor,
            b,
            nrhs,
            deadline,
            drop_solution: false,
            submitted,
        }
    }

    /// The submission timestamp `wait_us` is measured from.
    pub fn submitted(&self) -> Instant {
        self.submitted
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Solved; the solution is in [`JobReport::x`].
    Solved,
    /// Dequeued at or after its deadline; not solved.
    DeadlineExpired,
    /// The triangular solve reported a typed error.
    Failed(SolverError),
}

impl JobStatus {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Solved => "solved",
            JobStatus::DeadlineExpired => "deadline_expired",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Outcome of one job, produced by exactly one worker.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Echo of [`SolveJob::id`].
    pub id: usize,
    /// Terminal state.
    pub status: JobStatus,
    /// Column-major solution (present iff `status == Solved`).
    pub x: Option<Vec<f64>>,
    /// Microseconds from submission to dequeue.
    pub wait_us: u64,
    /// Microseconds spent in the triangular solves (0 if not solved).
    pub solve_us: u64,
    /// Index of the worker that handled the job.
    pub worker: usize,
}

/// Monotonic counters describing queue behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Jobs rejected by [`WorkerPool::try_submit`] because the queue was
    /// at capacity.
    pub rejected_full: u64,
    /// Jobs dequeued past their deadline (not solved).
    pub expired: u64,
    /// Jobs solved successfully.
    pub solved: u64,
    /// Jobs whose solve returned an error.
    pub failed: u64,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A minimal bounded MPMC queue on `Mutex` + `Condvar`.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking push: `Err(item)` if the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().unwrap();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push (back-pressure): waits for space. `Err(item)` only
    /// if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().unwrap();
        while !g.closed && g.items.len() >= self.capacity {
            g = self.not_full.wait(g).unwrap();
        }
        if g.closed {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Close the queue: producers fail fast, consumers drain and stop.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct PoolShared {
    queue: BoundedQueue<SolveJob>,
    reports: Mutex<Vec<JobReport>>,
    stats: Mutex<QueueStats>,
    /// Per-pool metrics registry (wait/solve histograms, worker busy
    /// counters, queue high-water). Pool-local rather than process-global
    /// so each batch reports its own deterministic snapshot.
    metrics: Arc<Registry>,
}

/// Fixed-size pool of solve workers over a [`BoundedQueue`].
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads draining a queue of capacity `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        Self::with_registry(workers, queue_cap, Arc::new(Registry::new()), 0)
    }

    /// Like [`WorkerPool::new`], but recording into a caller-provided
    /// registry. Sharded services pass one shared registry to every
    /// shard's pool so the latency histograms aggregate naturally;
    /// `worker_offset` keeps the `splu_worker_busy_us{worker=…}` labels
    /// globally unique (shard `s` of width `w` passes `s * w`).
    pub fn with_registry(
        workers: usize,
        queue_cap: usize,
        metrics: Arc<Registry>,
        worker_offset: usize,
    ) -> Self {
        let shared = Arc::new(PoolShared {
            queue: BoundedQueue::new(queue_cap),
            reports: Mutex::new(Vec::new()),
            stats: Mutex::new(QueueStats::default()),
            metrics,
        });
        let handles = (0..workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                let label = worker_offset + w;
                std::thread::Builder::new()
                    .name(format!("splu-solve-{label}"))
                    .spawn(move || worker_loop(label, &shared))
                    .expect("spawn solve worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// The pool's metrics registry: `splu_solve_wait_us` /
    /// `splu_solve_us` histograms, `splu_worker_busy_us{worker=…}`
    /// counters, `splu_deadline_expired_total` /
    /// `splu_queue_rejected_total` counters and the
    /// `splu_queue_depth_highwater` gauge. Valid to read at any time;
    /// callers that outlive the pool keep the `Arc`.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Blocking submit with back-pressure. `Err(job)` only if the pool
    /// has been shut down.
    pub fn submit(&self, job: SolveJob) -> Result<(), SolveJob> {
        self.shared.queue.push(job)?;
        self.shared.stats.lock().unwrap().accepted += 1;
        self.note_depth();
        Ok(())
    }

    /// Non-blocking submit: `Err(job)` if the queue is at capacity
    /// (counted as an admission rejection) or shut down.
    pub fn try_submit(&self, job: SolveJob) -> Result<(), SolveJob> {
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.stats.lock().unwrap().accepted += 1;
                self.note_depth();
                Ok(())
            }
            Err(job) => {
                self.shared.stats.lock().unwrap().rejected_full += 1;
                self.shared
                    .metrics
                    .counter("splu_queue_rejected_total")
                    .inc();
                Err(job)
            }
        }
    }

    fn note_depth(&self) {
        self.shared
            .metrics
            .gauge("splu_queue_depth_highwater")
            .raise(self.shared.queue.len() as f64);
    }

    /// Snapshot of the queue counters.
    pub fn stats(&self) -> QueueStats {
        *self.shared.stats.lock().unwrap()
    }

    /// Close the queue, wait for the workers to drain it, and return all
    /// reports sorted by job id.
    pub fn finish(self) -> (Vec<JobReport>, QueueStats) {
        self.shared.queue.close();
        for h in self.handles {
            h.join().expect("solve worker panicked");
        }
        let mut reports = std::mem::take(&mut *self.shared.reports.lock().unwrap());
        reports.sort_by_key(|r| r.id);
        let stats = *self.shared.stats.lock().unwrap();
        (reports, stats)
    }
}

fn worker_loop(worker: usize, shared: &PoolShared) {
    let mut ws = SolveWorkspace::default();
    let mut x: Vec<f64> = Vec::new();
    // Resolve metric handles once; updates afterwards are lock-free.
    let wait_hist = shared.metrics.histogram("splu_solve_wait_us");
    let solve_hist = shared.metrics.histogram("splu_solve_us");
    let expired_total = shared.metrics.counter("splu_deadline_expired_total");
    let busy_us = shared
        .metrics
        .counter(&format!("splu_worker_busy_us{{worker=\"{worker}\"}}"));
    while let Some(job) = shared.queue.pop() {
        let dequeued = Instant::now();
        let wait_us = dequeued.duration_since(job.submitted).as_micros() as u64;
        wait_hist.record(wait_us);

        let report = if job.deadline.is_some_and(|d| dequeued >= d) {
            shared.stats.lock().unwrap().expired += 1;
            expired_total.inc();
            JobReport {
                id: job.id,
                status: JobStatus::DeadlineExpired,
                x: None,
                wait_us,
                solve_us: 0,
                worker,
            }
        } else {
            x.clear();
            x.resize(job.b.len(), 0.0);
            let t0 = Instant::now();
            let res = job
                .factor
                .solve_many_with(&job.b, job.nrhs, &mut x, &mut ws);
            let solve_us = t0.elapsed().as_micros() as u64;
            solve_hist.record(solve_us);
            busy_us.add(solve_us);
            match res {
                Ok(()) => {
                    shared.stats.lock().unwrap().solved += 1;
                    JobReport {
                        id: job.id,
                        status: JobStatus::Solved,
                        x: (!job.drop_solution).then(|| x.clone()),
                        wait_us,
                        solve_us,
                        worker,
                    }
                }
                Err(e) => {
                    shared.stats.lock().unwrap().failed += 1;
                    JobReport {
                        id: job.id,
                        status: JobStatus::Failed(e),
                        x: None,
                        wait_us,
                        solve_us,
                        worker,
                    }
                }
            }
        };
        shared.reports.lock().unwrap().push(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;
    use splu_core::FactorOptions;
    use splu_sparse::gen::{self, ValueModel};

    fn factor_of(nx: usize, ny: usize) -> (splu_sparse::CscMatrix, Factorization) {
        let a = gen::grid2d(nx, ny, 0.4, ValueModel::default());
        let an = Analysis::of(&a, FactorOptions::default());
        let f = an.factorize(&a).unwrap();
        (a, f)
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let q: BoundedQueue<usize> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pool_solves_and_reports_in_id_order() {
        let (a, f) = factor_of(7, 7);
        let n = a.ncols();
        let pool = WorkerPool::new(3, 4);
        let mut truths = Vec::new();
        for id in 0..6 {
            let xt: Vec<f64> = (0..n).map(|i| ((i + id) as f64 * 0.1).cos()).collect();
            let b = a.matvec(&xt);
            truths.push(xt);
            pool.submit(SolveJob::new(id, f.clone(), b, 1, None))
                .unwrap();
        }
        let (reports, stats) = pool.finish();
        assert_eq!(reports.len(), 6);
        assert_eq!(stats.accepted, 6);
        assert_eq!(stats.solved, 6);
        for (r, xt) in reports.iter().zip(&truths) {
            assert_eq!(r.status, JobStatus::Solved);
            let x = r.x.as_ref().unwrap();
            let err = x
                .iter()
                .zip(xt)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            assert!(err < 1e-7, "job {} err={err:.3e}", r.id);
        }
    }

    #[test]
    fn zero_deadline_is_deterministically_expired() {
        let (a, f) = factor_of(5, 5);
        let n = a.ncols();
        let pool = WorkerPool::new(1, 2);
        pool.submit(SolveJob::new(0, f.clone(), vec![1.0; n], 1, Some(0)))
            .unwrap();
        pool.submit(SolveJob::new(1, f, vec![1.0; n], 1, None))
            .unwrap();
        let (reports, stats) = pool.finish();
        assert_eq!(reports[0].status, JobStatus::DeadlineExpired);
        assert!(reports[0].x.is_none());
        assert_eq!(reports[1].status, JobStatus::Solved);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.solved, 1);
        let _ = a;
    }

    #[test]
    fn with_timing_measures_wait_from_upstream_admission() {
        let (a, f) = factor_of(5, 5);
        let n = a.ncols();
        let pool = WorkerPool::new(1, 2);
        // admission happened 5ms ago upstream (e.g. waiting on a factor
        // flight); the report's wait must include that time
        let submitted = Instant::now() - std::time::Duration::from_millis(5);
        pool.submit(SolveJob::with_timing(
            0,
            f,
            vec![1.0; n],
            1,
            submitted,
            None,
        ))
        .unwrap();
        let (reports, _) = pool.finish();
        assert_eq!(reports[0].status, JobStatus::Solved);
        assert!(reports[0].wait_us >= 5_000, "wait {}", reports[0].wait_us);
        let _ = a;
    }

    #[test]
    fn with_timing_deadline_at_submission_expires() {
        // boundary: deadline == submission instant (the absolute-time
        // analogue of deadline_us = Some(0)) must expire deterministically
        let (a, f) = factor_of(5, 5);
        let n = a.ncols();
        let pool = WorkerPool::new(1, 2);
        let now = Instant::now();
        pool.submit(SolveJob::with_timing(0, f, vec![1.0; n], 1, now, Some(now)))
            .unwrap();
        let (reports, stats) = pool.finish();
        assert_eq!(reports[0].status, JobStatus::DeadlineExpired);
        assert_eq!(stats.expired, 1);
        let _ = a;
    }

    #[test]
    fn drop_solution_reports_solved_without_x() {
        let (a, f) = factor_of(5, 5);
        let n = a.ncols();
        let pool = WorkerPool::new(1, 2);
        let mut job = SolveJob::new(0, f, vec![1.0; n], 1, None);
        job.drop_solution = true;
        pool.submit(job).unwrap();
        let (reports, stats) = pool.finish();
        assert_eq!(reports[0].status, JobStatus::Solved);
        assert!(reports[0].x.is_none());
        assert_eq!(stats.solved, 1);
        let _ = a;
    }

    #[test]
    fn shared_registry_pools_aggregate_and_label_uniquely() {
        let (a, f) = factor_of(5, 5);
        let n = a.ncols();
        let reg = Arc::new(Registry::new());
        let p0 = WorkerPool::with_registry(2, 2, Arc::clone(&reg), 0);
        let p1 = WorkerPool::with_registry(2, 2, Arc::clone(&reg), 2);
        for id in 0..3 {
            p0.submit(SolveJob::new(id, f.clone(), vec![1.0; n], 1, None))
                .unwrap();
            p1.submit(SolveJob::new(id, f.clone(), vec![1.0; n], 1, None))
                .unwrap();
        }
        p0.finish();
        p1.finish();
        // both shards' samples land in one histogram…
        assert_eq!(reg.histogram_summary("splu_solve_us").count, 6);
        // …and the offset keeps per-worker busy labels distinct
        let busy: u64 = (0..4)
            .map(|w| reg.counter_value(&format!("splu_worker_busy_us{{worker=\"{w}\"}}")))
            .sum();
        assert_eq!(busy, reg.histogram_summary("splu_solve_us").sum);
        let _ = a;
    }

    #[test]
    fn pool_metrics_capture_latency_and_expiry() {
        let (a, f) = factor_of(6, 6);
        let n = a.ncols();
        let pool = WorkerPool::new(2, 4);
        let metrics = pool.metrics();
        for id in 0..4 {
            pool.submit(SolveJob::new(id, f.clone(), vec![1.0; n], 1, None))
                .unwrap();
        }
        pool.submit(SolveJob::new(4, f, vec![1.0; n], 1, Some(0)))
            .unwrap();
        let (_, stats) = pool.finish();
        assert_eq!(stats.solved, 4);
        // every dequeued job records a wait sample; only solved jobs
        // record a solve sample
        assert_eq!(metrics.histogram_summary("splu_solve_wait_us").count, 5);
        let solve = metrics.histogram_summary("splu_solve_us");
        assert_eq!(solve.count, 4);
        assert_eq!(metrics.counter_value("splu_deadline_expired_total"), 1);
        // worker busy counters partition the total solve time exactly
        let busy: u64 = (0..2)
            .map(|w| metrics.counter_value(&format!("splu_worker_busy_us{{worker=\"{w}\"}}")))
            .sum();
        assert_eq!(busy, solve.sum);
        let _ = a;
    }

    #[test]
    fn dimension_mismatch_is_reported_not_fatal() {
        let (_, f) = factor_of(5, 5);
        let pool = WorkerPool::new(2, 2);
        pool.submit(SolveJob::new(0, f.clone(), vec![1.0; 3], 1, None))
            .unwrap();
        let n = f.lu().n();
        pool.submit(SolveJob::new(1, f, vec![1.0; n], 1, None))
            .unwrap();
        let (reports, stats) = pool.finish();
        assert!(matches!(
            reports[0].status,
            JobStatus::Failed(SolverError::DimensionMismatch { .. })
        ));
        assert_eq!(reports[1].status, JobStatus::Solved);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.solved, 1);
    }
}
