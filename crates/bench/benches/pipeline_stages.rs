//! Criterion bench — the S\* pipeline stage costs on a suite matrix:
//! preprocessing (transversal + ordering), static symbolic factorization,
//! block-pattern construction, numeric factorization, and a triangular
//! solve.
//!
//! ```sh
//! cargo bench -p splu-bench --bench pipeline_stages
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use splu_core::{FactorOptions, SparseLuSolver};
use splu_order::ColumnOrdering;
use splu_sparse::suite;
use splu_symbolic::{
    amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
};
use std::hint::black_box;

fn stages(c: &mut Criterion) {
    let spec = suite::by_name("orsreg1").unwrap();
    let a = spec.build();
    let mut group = c.benchmark_group("orsreg1");
    group.sample_size(10);

    group.bench_function("preprocess", |b| {
        b.iter(|| {
            let (m, _, _) = splu_order::preprocess(black_box(&a), ColumnOrdering::MinDegreeAtA);
            black_box(m.nnz())
        })
    });

    let (permuted, _, _) = splu_order::preprocess(&a, ColumnOrdering::MinDegreeAtA);
    group.bench_function("static_symbolic", |b| {
        b.iter(|| {
            let s = static_symbolic_factorization(black_box(&permuted));
            black_box(s.factor_nnz())
        })
    });

    let s = static_symbolic_factorization(&permuted);
    group.bench_function("partition+blocks", |b| {
        b.iter(|| {
            let base = partition_supernodes(black_box(&s), 25);
            let part = amalgamate(&s, &base, 4, 25);
            let bp = BlockPattern::build(&s, &part);
            black_box(bp.storage_entries())
        })
    });

    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    group.bench_function("numeric_factor", |b| {
        b.iter(|| {
            let lu = solver.factor().expect("nonsingular");
            black_box(lu.stats.row_interchanges)
        })
    });

    let lu = solver.factor().unwrap();
    let rhs: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.1).sin()).collect();
    group.bench_function("solve", |b| {
        b.iter(|| black_box(lu.solve(black_box(&rhs))))
    });
    group.finish();
}

criterion_group!(benches, stages);
criterion_main!(benches);
