//! Bench — the S\* pipeline stage costs on a suite matrix:
//! preprocessing (transversal + ordering), static symbolic factorization,
//! block-pattern construction, numeric factorization, and a triangular
//! solve.
//!
//! Uses the std-only `splu_bench::stopwatch` harness (the build
//! environment cannot fetch criterion).
//!
//! ```sh
//! cargo bench -p splu-bench --bench pipeline_stages
//! ```

use splu_bench::stopwatch::report;
use splu_core::{FactorOptions, SparseLuSolver};
use splu_order::ColumnOrdering;
use splu_sparse::suite;
use splu_symbolic::{
    amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
};
use std::hint::black_box;

fn main() {
    let spec = suite::by_name("orsreg1").unwrap();
    let a = spec.build();
    println!(
        "orsreg1 pipeline stage times (n={}, nnz={})",
        a.ncols(),
        a.nnz()
    );

    report("preprocess", 0, || {
        let (m, _, _) = splu_order::preprocess(black_box(&a), ColumnOrdering::MinDegreeAtA);
        black_box(m.nnz())
    });

    let (permuted, _, _) = splu_order::preprocess(&a, ColumnOrdering::MinDegreeAtA);
    report("static_symbolic", 0, || {
        let s = static_symbolic_factorization(black_box(&permuted));
        black_box(s.factor_nnz())
    });

    let s = static_symbolic_factorization(&permuted);
    report("partition+blocks", 0, || {
        let base = partition_supernodes(black_box(&s), 25);
        let part = amalgamate(&s, &base, 4, 25);
        let bp = BlockPattern::build(&s, &part);
        black_box(bp.storage_entries())
    });

    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    report("numeric_factor", 0, || {
        let lu = solver.factor().expect("nonsingular");
        black_box(lu.stats.row_interchanges)
    });

    let lu = solver.factor().unwrap();
    let rhs: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.1).sin()).collect();
    report("solve", 0, || black_box(lu.solve(black_box(&rhs))));
}
