//! Bench — DGEMM vs DGEMV rates at the paper's block size.
//!
//! §6 of the paper motivates the whole S\* design with the kernel gap at
//! block size 25: on T3D, DGEMM reaches 103 MFLOPS vs DGEMV's 85; on T3E,
//! 388 vs 255. This bench measures the same two kernels (and the packed
//! TRSM) on the host so `w3 < w2` can be verified for the machine the
//! tests actually run on.
//!
//! Uses the std-only `splu_bench::stopwatch` harness (the build
//! environment cannot fetch criterion).
//!
//! ```sh
//! cargo bench -p splu-bench --bench blas_rates
//! ```

use splu_bench::stopwatch::report;
use splu_kernels::{dgemm, dgemv, dtrsm_left_lower_unit, DenseMat};
use std::hint::black_box;

fn main() {
    let n = 25usize;
    let a = DenseMat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    let b = DenseMat::from_fn(n, n, |i, j| ((i * 5 + j) % 13) as f64 * 0.1 - 0.6);
    let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.01 - 0.1).collect();

    println!("block size {n} kernel rates (paper §6: w3 < w2 expected)");

    let gemm_flops = (2 * n * n * n) as u64;
    let mut cmat = DenseMat::zeros(n, n);
    let gemm = report("dgemm", gemm_flops, || {
        dgemm(
            n,
            n,
            n,
            1.0,
            black_box(a.as_slice()),
            n,
            black_box(b.as_slice()),
            n,
            0.0,
            cmat.as_mut_slice(),
            n,
        );
        black_box(cmat.as_slice()[0])
    });

    // n DGEMV calls = same flops as one DGEMM
    let mut y = vec![0.0f64; n];
    let gemv = report("dgemv_xN", gemm_flops, || {
        for _ in 0..n {
            dgemv(
                n,
                n,
                1.0,
                black_box(a.as_slice()),
                n,
                black_box(&x),
                0.0,
                &mut y,
            );
        }
        black_box(y[0])
    });

    let mut rhs = b.clone();
    report("dtrsm", (n * n * n) as u64, || {
        dtrsm_left_lower_unit(n, n, black_box(a.as_slice()), n, rhs.as_mut_slice(), n);
        black_box(rhs.as_slice()[0])
    });

    let ratio = gemv.median_secs / gemm.median_secs;
    println!("dgemm speedup over columnwise dgemv: {ratio:.2}x");
}
