//! Criterion bench — DGEMM vs DGEMV rates at the paper's block size.
//!
//! §6 of the paper motivates the whole S\* design with the kernel gap at
//! block size 25: on T3D, DGEMM reaches 103 MFLOPS vs DGEMV's 85; on T3E,
//! 388 vs 255. This bench measures the same two kernels (and the packed
//! TRSM) on the host so `w3 < w2` can be verified for the machine the
//! tests actually run on.
//!
//! ```sh
//! cargo bench -p splu-bench --bench blas_rates
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use splu_kernels::{dgemm, dgemv, dtrsm_left_lower_unit, DenseMat};
use std::hint::black_box;

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("block25");
    let n = 25usize;
    let a = DenseMat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.5);
    let b = DenseMat::from_fn(n, n, |i, j| ((i * 5 + j) % 13) as f64 * 0.1 - 0.6);
    let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.01 - 0.1).collect();

    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function(BenchmarkId::new("dgemm", n), |bench| {
        let mut cmat = DenseMat::zeros(n, n);
        bench.iter(|| {
            dgemm(
                n,
                n,
                n,
                1.0,
                black_box(a.as_slice()),
                n,
                black_box(b.as_slice()),
                n,
                0.0,
                cmat.as_mut_slice(),
                n,
            );
            black_box(cmat.as_slice()[0])
        })
    });

    // n DGEMV calls = same flops as one DGEMM
    group.bench_function(BenchmarkId::new("dgemv_xN", n), |bench| {
        let mut y = vec![0.0f64; n];
        bench.iter(|| {
            for _ in 0..n {
                dgemv(n, n, 1.0, black_box(a.as_slice()), n, black_box(&x), 0.0, &mut y);
            }
            black_box(y[0])
        })
    });

    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function(BenchmarkId::new("dtrsm", n), |bench| {
        let mut rhs = b.clone();
        bench.iter(|| {
            dtrsm_left_lower_unit(n, n, black_box(a.as_slice()), n, rhs.as_mut_slice(), n);
            black_box(rhs.as_slice()[0])
        })
    });
    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
