//! End-to-end factorization benchmark: the sequential, 1D and 2D drivers
//! over a small synthetic suite, recording GFLOP/s and the peak
//! scratch-arena footprint of each driver.
//!
//! This is the perf-trajectory anchor (`results/BENCH_lu.json`): every
//! run records, per matrix,
//!
//! * `seq` — the scratched sequential driver, timed on a **warmed**
//!   arena; `warmed_grow_events` must be 0 (the allocation-free proof:
//!   once the arena has seen the pattern's shapes, the numeric loop
//!   performs no heap allocation),
//! * `par1d` — the 1D compute-ahead code on `PAR1D_PROCS` simulated
//!   processors,
//! * `par2d` — the 2D asynchronous code on a `Grid::for_procs` grid.
//!
//! GFLOP/s = (gemm + other flops) / wall seconds of the numeric phase.
//! The host simulates processors with threads, so the parallel rates are
//! trend lines, not speedups — the gate in `verify.sh` only checks the
//! file is well-formed and every rate is positive.

use splu_core::par1d::{factor_par1d_opts, Strategy1d};
use splu_core::par2d::{factor_par2d_opts, Sync2d, DEFAULT_LOOKAHEAD};
use splu_core::seq::factor_sequential_scratched;
use splu_core::{BlockMatrix, FactorOptions, FactorScratch, FactorStats, SparseLuSolver};
use splu_machine::Grid;
use splu_probe::Probe;
use splu_sparse::suite;
use std::time::Instant;

/// Default output path, relative to the repo root.
pub const DEFAULT_OUT: &str = "results/BENCH_lu.json";
/// Matrices benchmarked by default (≥ 3, all quick to factor).
pub const MATRICES: [&str; 3] = ["sherman5", "jpwh991", "orsreg1"];
/// Simulated processors for the 1D driver.
pub const PAR1D_PROCS: usize = 2;
/// Simulated processors for the 2D driver (`Grid::for_procs`).
pub const PAR2D_PROCS: usize = 4;
/// Lookahead windows swept by the 2D driver (per matrix, alongside the
/// gated main measurement): `0` is the in-order ablation baseline.
pub const LOOKAHEAD_SWEEP: [usize; 4] = [0, 1, 2, 4];

/// Which suite one `bench-lu` invocation measures. Sections it does not
/// measure are carried forward verbatim from the baseline record, so
/// `BENCH_lu.json` keeps both the measured small-suite record and the
/// modeled large-suite record across alternating runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteSel {
    /// The wall-clock small suite ([`MATRICES`]): seq/par1d/par2d.
    Small,
    /// The n = 50k–500k extension tier ([`suite::XLARGE`]), through the
    /// T3E machine model.
    Large,
    /// Single shrunk large-tier instance ([`suite::XLARGE_SMOKE`]) for
    /// CI smoke runs.
    LargeSmoke,
}

impl SuiteSel {
    /// Parse a `--suite` flag value.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "small" => Ok(Self::Small),
            "large" => Ok(Self::Large),
            "large-smoke" => Ok(Self::LargeSmoke),
            other => Err(format!(
                "--suite: unknown value `{other}` (expected small|large|large-smoke)"
            )),
        }
    }
}

/// Update-stage time breakdown of one measured run (the last run of the
/// measurement budget): seconds inside the stacked GEMM calls, inside
/// the map-driven scatter loops, and blocked waiting for remote panels,
/// plus the batched-call counts behind them.
#[derive(Clone)]
pub struct UpdateBreakdown {
    pub gemm_secs: f64,
    pub scatter_secs: f64,
    pub wait_secs: f64,
    /// Blocked-wait seconds on *critical-path* (non-deferred) updates
    /// only — the stall the 2D lookahead window exists to hide. Zero for
    /// the drivers without a lookahead executor.
    pub panel_wait_secs: f64,
    pub gemm_calls: u64,
    pub gemm_rows_max: u64,
    /// Updates whose remote operands had all arrived by issue time.
    pub lookahead_hits: u64,
    /// Updates the executor pushed behind a later panel factorization.
    pub deferred_updates: u64,
}

impl UpdateBreakdown {
    fn from_stats(stats: &FactorStats) -> Self {
        Self {
            gemm_secs: stats.update_gemm_secs,
            scatter_secs: stats.update_scatter_secs,
            wait_secs: stats.update_wait_secs,
            panel_wait_secs: stats.panel_wait_secs,
            gemm_calls: stats.update_gemm_calls,
            gemm_rows_max: stats.update_gemm_rows_max,
            lookahead_hits: stats.lookahead_hits,
            deferred_updates: stats.deferred_updates,
        }
    }
}

/// One point of the 2D lookahead-window sweep.
pub struct SweepPoint {
    pub lookahead: usize,
    pub gflops: f64,
    pub update_wait_secs: f64,
    pub panel_wait_secs: f64,
    pub lookahead_hits: u64,
    pub deferred_updates: u64,
}

/// One driver's measurement.
#[derive(Clone)]
pub struct DriverResult {
    pub gflops: f64,
    pub scratch_peak_bytes: u64,
    pub update: UpdateBreakdown,
}

/// Wall-time attribution of one traced (untimed) 2D run, aggregated
/// over ranks — the `splu analyze` categories folded into the record so
/// the gate can catch *wait-time* regressions, not just rate drops.
/// `None` when the build has the `probe` feature off (nothing recorded).
#[derive(Clone)]
pub struct AttributionSummary {
    /// Wall seconds of the traced run.
    pub wall_secs: f64,
    /// Seconds per category, summed over ranks, in
    /// [`splu_probe::analyze::CATEGORIES`] order.
    pub category_secs: [f64; 6],
    /// Critical-path seconds through the reconstructed op DAG.
    pub critical_path_secs: f64,
    /// Total work / critical path.
    pub speedup_ceiling: f64,
    /// Executor-measured sustained pipeline depth (p95).
    pub depth_p95: u32,
    /// Theorem 2 bound `p_c + W`.
    pub depth_bound: u32,
}

impl AttributionSummary {
    /// Pivot-wait share of total per-rank wall time (0.0 when the trace
    /// was empty) — the gated wait statistic.
    pub fn pivot_wait_share(&self) -> f64 {
        let total: f64 = self.category_secs.iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            let idx = splu_probe::analyze::CATEGORIES
                .iter()
                .position(|&c| c == "pivot_wait")
                .expect("pivot_wait category");
            self.category_secs[idx] / total
        }
    }
}

/// One matrix row of the benchmark.
pub struct MatrixResult {
    pub name: &'static str,
    pub n: usize,
    pub nnz: usize,
    pub seq: DriverResult,
    /// Grow events of the final (warmed) sequential run — 0 proves the
    /// steady-state factorization loop is allocation-free.
    pub seq_warmed_grow_events: u64,
    pub par1d: DriverResult,
    pub par2d: DriverResult,
    /// Lookahead window used by the (gated) `par2d` measurement.
    pub par2d_lookahead: usize,
    /// Informational `W` sweep of the 2D driver ([`LOOKAHEAD_SWEEP`]).
    pub par2d_sweep: Vec<SweepPoint>,
    /// Attribution of one traced 2D run (`None` with `probe` off).
    pub par2d_attribution: Option<AttributionSummary>,
}

fn gflops(stats: &FactorStats, secs: f64) -> f64 {
    (stats.gemm_flops + stats.other_flops) as f64 / secs.max(1e-9) / 1e9
}

/// Best rate over repeated runs totalling at least `min_secs`; `run`
/// returns the run's stats and its numeric-phase wall seconds.
fn best_rate(
    min_secs: f64,
    mut run: impl FnMut() -> (FactorStats, f64),
) -> (DriverResult, FactorStats) {
    let mut best = 0.0f64;
    let mut spent = 0.0f64;
    loop {
        let (stats, dt) = run();
        spent += dt;
        best = best.max(gflops(&stats, dt));
        if spent >= min_secs {
            let peak = stats.scratch_peak_bytes;
            let update = UpdateBreakdown::from_stats(&stats);
            return (
                DriverResult {
                    gflops: best,
                    scratch_peak_bytes: peak,
                    update,
                },
                stats,
            );
        }
    }
}

/// Benchmark one matrix across the three drivers. `min_secs` is the
/// per-driver measurement budget (best rate over repeated runs);
/// `lookahead` is the 2D window of the gated measurement (the `W` sweep
/// runs regardless).
pub fn bench_matrix(name: &'static str, min_secs: f64, lookahead: usize) -> MatrixResult {
    let spec = suite::by_name(name).unwrap_or_else(|| panic!("unknown suite matrix `{name}`"));
    let a = spec.build_scaled(1.0);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let grid = Grid::for_procs(PAR2D_PROCS);
    let probe = Probe::disabled();

    // sequential, on a reused arena: run 0 warms the buffers (untimed),
    // every later run must not grow them.
    let mut scratch = FactorScratch::new();
    let mut blocks = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    factor_sequential_scratched(&mut blocks, 1.0, &probe, &mut scratch).expect("seq warm-up");
    let (seq, seq_stats) = best_rate(min_secs, || {
        let mut blocks = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
        let t0 = Instant::now();
        let (_, stats) =
            factor_sequential_scratched(&mut blocks, 1.0, &probe, &mut scratch).expect("seq");
        (stats, t0.elapsed().as_secs_f64())
    });
    assert_eq!(
        seq_stats.scratch_grow_events, 0,
        "warmed sequential factorization grew scratch buffers"
    );
    let seq_warmed_grow_events = seq_stats.scratch_grow_events;

    // parallel drivers: the runtime reports the parallel-section wall
    // time; fresh per-processor arenas each run, so take the best rate
    // over the budget (thread start-up noise dominates single runs).
    // Like the sequential arena, each thread configuration gets one
    // untimed warm-up run first — the first run of a configuration
    // eats the allocator/page-fault cost of its stores.
    let run_1d = || {
        let r = factor_par1d_opts(
            &solver.permuted,
            solver.pattern.clone(),
            PAR1D_PROCS,
            Strategy1d::ComputeAhead,
            1.0,
        );
        (r.stats, r.elapsed)
    };
    run_1d();
    let (par1d, _) = best_rate(min_secs, run_1d);
    let run_2d = |w: usize| {
        let r = factor_par2d_opts(
            &solver.permuted,
            solver.pattern.clone(),
            grid,
            Sync2d::Async,
            1.0,
            w,
        );
        (r.stats, r.elapsed)
    };
    run_2d(lookahead);
    let (mut par2d, _) = best_rate(min_secs, || run_2d(lookahead));

    // window sweep: same measurement budget per point, so the recorded
    // wait-second trend is comparable across `W`. The `W = lookahead`
    // point repeats the gated measurement — fold it into the headline's
    // best-of-repeats so both report the same draw.
    let par2d_sweep = LOOKAHEAD_SWEEP
        .iter()
        .map(|&w| {
            let (d, stats) = best_rate(min_secs, || run_2d(w));
            if w == lookahead && d.gflops > par2d.gflops {
                par2d = d.clone();
            }
            let gflops = if w == lookahead {
                par2d.gflops
            } else {
                d.gflops
            };
            SweepPoint {
                lookahead: w,
                gflops,
                update_wait_secs: stats.update_wait_secs,
                panel_wait_secs: stats.panel_wait_secs,
                lookahead_hits: stats.lookahead_hits,
                deferred_updates: stats.deferred_updates,
            }
        })
        .collect();

    // one traced (untimed) 2D run feeds the wall-time attribution
    let par2d_attribution = if splu_probe::ENABLED {
        use splu_core::par2d::factor_par2d_traced;
        use splu_probe::Collector;
        let collector = Collector::new();
        let r = factor_par2d_traced(
            &solver.permuted,
            solver.pattern.clone(),
            grid,
            Sync2d::Async,
            1.0,
            lookahead,
            &collector,
        );
        let trace = collector.finish();
        let a = splu_probe::analyze::attribute(&trace);
        let mut category_secs = [0.0f64; 6];
        for rank in &a.ranks {
            for (s, &ns) in category_secs.iter_mut().zip(&rank.category_ns) {
                *s += ns as f64 / 1e9;
            }
        }
        Some(AttributionSummary {
            wall_secs: a.wall_ns as f64 / 1e9,
            category_secs,
            critical_path_secs: a.critical_path_ns as f64 / 1e9,
            speedup_ceiling: a.speedup_ceiling,
            depth_p95: r.sustained_depth_p95(),
            depth_bound: (grid.pc + lookahead) as u32,
        })
    } else {
        None
    };

    MatrixResult {
        name,
        n: a.ncols(),
        nnz: a.nnz(),
        seq,
        seq_warmed_grow_events,
        par1d,
        par2d,
        par2d_lookahead: lookahead,
        par2d_sweep,
        par2d_attribution,
    }
}

/// One matrix of the large-tier record: symbolic-pipeline statistics
/// plus the three modeled times (T3E machine model; the matrices are
/// orders of magnitude past what thread-simulated wall-clock runs can
/// measure on this host).
pub struct LargeMatrixResult {
    pub name: &'static str,
    pub n: usize,
    pub nnz: usize,
    /// Entries of the static (S\*) factor.
    pub factor_nnz: usize,
    pub nblocks: usize,
    pub ntasks: usize,
    /// Independent subtree tasks of the elimination-tree cut.
    pub nsubtrees: usize,
    /// Fraction of modeled flops inside proportional-mapped subtrees.
    pub subtree_work_ppm: u32,
    pub steal_attempts: u64,
    pub steal_hits: u64,
    /// Wall seconds of the symbolic pipeline (order → S\* → partition →
    /// structure → task graph → plan) — real, not modeled.
    pub analyze_secs: f64,
    /// Modeled 1-processor time (total work under the machine model —
    /// provably the 1-proc simulator makespan, without the event loop).
    pub seq_secs: f64,
    /// Modeled makespan of the all-cyclic stage pipeline (the "before"
    /// engine expressed in plan form) on the 2D grid.
    pub cyclic_secs: f64,
    /// Modeled makespan of the elimination-tree task-DAG plan.
    pub taskdag_secs: f64,
}

impl LargeMatrixResult {
    pub fn cyclic_speedup(&self) -> f64 {
        self.seq_secs / self.cyclic_secs.max(1e-12)
    }
    pub fn taskdag_speedup(&self) -> f64 {
        self.seq_secs / self.taskdag_secs.max(1e-12)
    }
}

/// Geometric mean (1.0 on an empty slice — the neutral headline).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        sum += x.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Model one large-tier matrix: natural ordering (the hierarchical
/// generators emit subdomains-then-border directly; min-degree both
/// scrambles that and costs minutes at this scale), S\* symbolic
/// factorization, supernode partition, structure-only block pattern (no
/// scatter maps — those are for numeric runs), then the task graph
/// simulated under T3E on the [`PAR2D_PROCS`] grid with the cyclic and
/// task-DAG plans.
pub fn bench_large_matrix(name: &'static str) -> LargeMatrixResult {
    use splu_sched::{plan_taskdag, taskdag_sim_schedule, TaskDagPlan, TaskGraph};
    use splu_symbolic::{
        amalgamate, block_etree, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    let spec = suite::by_name(name).unwrap_or_else(|| panic!("unknown suite matrix `{name}`"));
    let a = spec.build();
    let opts = FactorOptions::default();
    let t0 = Instant::now();
    let (permuted, _, _) = splu_order::preprocess(&a, splu_order::ColumnOrdering::Natural);
    let s = static_symbolic_factorization(&permuted);
    let base = partition_supernodes(&s, opts.block_size);
    let part = amalgamate(&s, &base, opts.amalgamation, opts.block_size);
    let bp = Arc::new(BlockPattern::build_structural(&s, &part));
    let g = TaskGraph::build(&bp);
    let parent = block_etree(&bp);
    let grid = Grid::for_procs(PAR2D_PROCS);
    let plan = plan_taskdag(&g, &parent, grid.nprocs());
    let analyze_secs = t0.elapsed().as_secs_f64();

    let model = splu_machine::T3E;
    let seq_secs = g.total_work(&model);
    let dag = taskdag_sim_schedule(&g, &plan, grid.pr, grid.pc);
    let taskdag_secs = splu_sched::sim::simulate(&g, &dag, &model).makespan;
    let cyc_plan = TaskDagPlan::cyclic(bp.nblocks(), grid.nprocs());
    let cyc = taskdag_sim_schedule(&g, &cyc_plan, grid.pr, grid.pc);
    let cyclic_secs = splu_sched::sim::simulate(&g, &cyc, &model).makespan;

    LargeMatrixResult {
        name,
        n: a.ncols(),
        nnz: a.nnz(),
        factor_nnz: s.factor_nnz(),
        nblocks: bp.nblocks(),
        ntasks: g.len(),
        nsubtrees: plan.nsubtrees,
        subtree_work_ppm: plan.subtree_work_ppm,
        steal_attempts: plan.steal_attempts,
        steal_hits: plan.steal_hits,
        analyze_secs,
        seq_secs,
        cyclic_secs,
        taskdag_secs,
    }
}

/// Previous-record rates: `(matrix, driver) → GFLOP/s`, parsed from an
/// earlier `BENCH_lu.json`. `None` when the text is not a benchmark
/// record (missing file contents, different bench, parse failure).
pub fn parse_rates(text: &str) -> Option<std::collections::HashMap<(String, String), f64>> {
    let v = splu_probe::json::parse(text).ok()?;
    if v.get("bench")?.as_str()? != "lu_factor" {
        return None;
    }
    let mut map = std::collections::HashMap::new();
    for m in v.get("matrices")?.items()? {
        let name = m.get("name")?.as_str()?;
        for d in ["seq", "par1d", "par2d"] {
            if let Some(g) = m
                .get(d)
                .and_then(|o| o.get("gflops"))
                .and_then(|g| g.as_f64())
            {
                map.insert((name.to_string(), d.to_string()), g);
            }
        }
    }
    Some(map)
}

/// Previous-record pivot-wait shares: `matrix → pivot_wait_share`,
/// parsed from an earlier `BENCH_lu.json`. Matrices recorded before the
/// attribution block (or with `probe` off) are simply absent.
pub fn parse_pivot_wait_shares(text: &str) -> Option<std::collections::HashMap<String, f64>> {
    let v = splu_probe::json::parse(text).ok()?;
    if v.get("bench")?.as_str()? != "lu_factor" {
        return None;
    }
    let mut map = std::collections::HashMap::new();
    for m in v.get("matrices")?.items()? {
        let name = m.get("name")?.as_str()?;
        if let Some(share) = m
            .get("par2d_attribution")
            .and_then(|a| a.get("pivot_wait_share"))
            .and_then(|s| s.as_f64())
        {
            map.insert(name.to_string(), share);
        }
    }
    Some(map)
}

/// Previous-record large-tier task-DAG speedups: `matrix →
/// speedup_vs_seq.par2d_taskdag`. Absent for records written before the
/// large tier existed.
pub fn parse_large_speedups(text: &str) -> Option<std::collections::HashMap<String, f64>> {
    let v = splu_probe::json::parse(text).ok()?;
    if v.get("bench")?.as_str()? != "lu_factor" {
        return None;
    }
    let mut map = std::collections::HashMap::new();
    for c in v.get("large_suite")?.get("cases")?.items()? {
        let name = c.get("name")?.as_str()?;
        if let Some(s) = c
            .get("speedup_vs_seq")
            .and_then(|s| s.get("par2d_taskdag"))
            .and_then(|s| s.as_f64())
        {
            map.insert(name.to_string(), s);
        }
    }
    Some(map)
}

/// Previous-record small-suite headline: `(par1d, par2d)` geomean
/// speedups vs seq. Absent for records written before the headline.
pub fn parse_headline(text: &str) -> Option<(f64, f64)> {
    let v = splu_probe::json::parse(text).ok()?;
    let h = v.get("headline")?.get("geomean_speedup_vs_seq")?;
    Some((h.get("par1d")?.as_f64()?, h.get("par2d")?.as_f64()?))
}

/// Gate the fresh large-tier record. Two conditions:
///
/// * **Acceptance floor**: the task-DAG geomean `speedup_vs_seq` must
///   exceed 1.0 — the parallel engine must beat the sequential driver
///   under the machine model, or the whole tier is pointless. The model
///   is deterministic, so the smoke tier holds the floor too.
/// * **Regression**: any matrix's task-DAG speedup more than `tol_pct`
///   percent below its recorded value fails (the model is deterministic;
///   the tolerance absorbs deliberate planner changes, not noise).
pub fn gate_large(
    rows: &[LargeMatrixResult],
    prev: Option<&std::collections::HashMap<String, f64>>,
    tol_pct: f64,
    require_floor: bool,
) -> Result<(), String> {
    let mut failures = Vec::new();
    let gm = geomean(rows.iter().map(|r| r.taskdag_speedup()));
    if require_floor && gm <= 1.0 {
        failures.push(format!(
            "large suite: par2d_taskdag geomean speedup_vs_seq {gm:.4} \
             does not beat sequential (> 1.0 required)"
        ));
    }
    if let Some(prev) = prev {
        for r in rows {
            if let Some(&p) = prev.get(r.name) {
                let s = r.taskdag_speedup();
                if s < p * (1.0 - tol_pct / 100.0) {
                    failures.push(format!(
                        "{}/par2d_taskdag: modeled speedup {s:.4} is more than \
                         {tol_pct}% below the recorded {p:.4}",
                        r.name
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "large-suite regression:\n  {}",
            failures.join("\n  ")
        ))
    }
}

/// Gate the fresh small-suite headline against the recorded one: either
/// driver's geomean speedup-vs-seq more than `tol_pct` percent below the
/// record fails.
pub fn gate_headline(
    rows: &[MatrixResult],
    prev: Option<(f64, f64)>,
    tol_pct: f64,
) -> Result<(), String> {
    let Some((p1_prev, p2_prev)) = prev else {
        return Ok(());
    };
    let (p1, p2) = headline_speedups(rows);
    let mut failures = Vec::new();
    for (d, g, p) in [("par1d", p1, p1_prev), ("par2d", p2, p2_prev)] {
        if g < p * (1.0 - tol_pct / 100.0) {
            failures.push(format!(
                "headline/{d}: geomean speedup_vs_seq {g:.4} is more than \
                 {tol_pct}% below the recorded {p:.4}"
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("headline regression:\n  {}", failures.join("\n  ")))
    }
}

/// Gate the fresh attribution against a previous record: the pivot-wait
/// share of any matrix may grow at most `tol_pct / 100` in absolute
/// terms (additive slack — shares are small and noisy, so a relative
/// bound would flap near zero).
pub fn gate_attribution_against(
    rows: &[MatrixResult],
    prev: &std::collections::HashMap<String, f64>,
    tol_pct: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for r in rows {
        let (Some(at), Some(&p)) = (&r.par2d_attribution, prev.get(r.name)) else {
            continue;
        };
        let share = at.pivot_wait_share();
        if share > p + tol_pct / 100.0 {
            failures.push(format!(
                "{}/par2d: pivot-wait share {share:.4} exceeds the recorded \
                 {p:.4} by more than {tol_pct}/100",
                r.name
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "wait-time regression:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn breakdown_json(b: &UpdateBreakdown) -> String {
    format!(
        "\"update\": {{\"gemm_secs\": {:.6}, \"scatter_secs\": {:.6}, \
         \"wait_secs\": {:.6}, \"panel_wait_secs\": {:.6}, \
         \"gemm_calls\": {}, \"gemm_rows_max\": {}, \
         \"lookahead_hits\": {}, \"deferred_updates\": {}}}",
        b.gemm_secs,
        b.scatter_secs,
        b.wait_secs,
        b.panel_wait_secs,
        b.gemm_calls,
        b.gemm_rows_max,
        b.lookahead_hits,
        b.deferred_updates
    )
}

fn attribution_json(at: &AttributionSummary) -> String {
    let mut body = format!("\"wall_secs\": {:.6}", at.wall_secs);
    for (name, secs) in splu_probe::analyze::CATEGORIES
        .iter()
        .zip(&at.category_secs)
    {
        body.push_str(&format!(", \"{name}_secs\": {secs:.6}"));
    }
    body.push_str(&format!(
        ", \"pivot_wait_share\": {:.6}, \"critical_path_secs\": {:.6}, \
         \"speedup_ceiling\": {:.4}, \"depth_p95\": {}, \"depth_bound\": {}",
        at.pivot_wait_share(),
        at.critical_path_secs,
        at.speedup_ceiling,
        at.depth_p95,
        at.depth_bound
    ));
    format!("\"par2d_attribution\": {{{body}}}")
}

fn sweep_json(points: &[SweepPoint]) -> String {
    let body = points
        .iter()
        .map(|p| {
            format!(
                "{{\"w\": {}, \"gflops\": {:.4}, \"update_wait_secs\": {:.6}, \
                 \"panel_wait_secs\": {:.6}, \"lookahead_hits\": {}, \
                 \"deferred_updates\": {}}}",
                p.lookahead,
                p.gflops,
                p.update_wait_secs,
                p.panel_wait_secs,
                p.lookahead_hits,
                p.deferred_updates
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    format!("\"par2d_lookahead_sweep\": [\n      {body}]")
}

/// Render the measured small-suite rows as the `"matrices"` array value
/// (`[...]`). When the previous record is supplied, each matrix row
/// carries its per-driver `speedup_vs_prev` ratios (new rate / recorded
/// rate).
fn matrices_json(
    rows: &[MatrixResult],
    prev: Option<&std::collections::HashMap<(String, String), f64>>,
) -> String {
    let mut json = String::new();
    json.push_str("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {},\n",
            r.name, r.n, r.nnz
        ));
        json.push_str(&format!(
            "     \"seq\": {{\"gflops\": {:.4}, \"scratch_peak_bytes\": {}, \
             \"warmed_grow_events\": {},\n      {}}},\n",
            r.seq.gflops,
            r.seq.scratch_peak_bytes,
            r.seq_warmed_grow_events,
            breakdown_json(&r.seq.update)
        ));
        json.push_str(&format!(
            "     \"par1d\": {{\"gflops\": {:.4}, \"scratch_peak_bytes\": {},\n      {}}},\n",
            r.par1d.gflops,
            r.par1d.scratch_peak_bytes,
            breakdown_json(&r.par1d.update)
        ));
        json.push_str(&format!(
            "     \"par2d\": {{\"gflops\": {:.4}, \"lookahead\": {}, \
             \"scratch_peak_bytes\": {},\n      {}}},\n",
            r.par2d.gflops,
            r.par2d_lookahead,
            r.par2d.scratch_peak_bytes,
            breakdown_json(&r.par2d.update)
        ));
        json.push_str(&format!("     {}", sweep_json(&r.par2d_sweep)));
        if let Some(at) = &r.par2d_attribution {
            json.push_str(&format!(",\n     {}", attribution_json(at)));
        }
        if let Some(prev) = prev {
            let ratio = |d: &str, g: f64| {
                prev.get(&(r.name.to_string(), d.to_string())).map(|&p| {
                    if p > 0.0 {
                        g / p
                    } else {
                        0.0
                    }
                })
            };
            if let (Some(s), Some(p1), Some(p2)) = (
                ratio("seq", r.seq.gflops),
                ratio("par1d", r.par1d.gflops),
                ratio("par2d", r.par2d.gflops),
            ) {
                json.push_str(&format!(
                    ",\n     \"speedup_vs_prev\": {{\"seq\": {s:.4}, \
                     \"par1d\": {p1:.4}, \"par2d\": {p2:.4}}}"
                ));
            }
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]");
    json
}

/// The per-driver geomean `speedup_vs_seq` headline of the small suite:
/// each parallel driver's rate over the sequential rate of the same
/// matrix (identical flop counts, so the rate ratio is the time ratio),
/// aggregated with a geometric mean across the suite.
fn headline_json(rows: &[MatrixResult]) -> String {
    let (p1, p2) = headline_speedups(rows);
    format!(
        "{{\"geomean_speedup_vs_seq\": {{\"par1d\": {p1:.4}, \"par2d\": {p2:.4}}}, \
         \"note\": \"thread-simulated processors on this host; trajectory metric, \
         see large_suite for the modeled parallel wins\"}}"
    )
}

/// `(par1d, par2d)` geomean speedups vs the sequential driver.
pub fn headline_speedups(rows: &[MatrixResult]) -> (f64, f64) {
    let ratio = |g: f64, s: f64| g / s.max(1e-12);
    (
        geomean(rows.iter().map(|r| ratio(r.par1d.gflops, r.seq.gflops))),
        geomean(rows.iter().map(|r| ratio(r.par2d.gflops, r.seq.gflops))),
    )
}

/// Render the large-tier record as the `"large_suite"` object value.
fn large_json(rows: &[LargeMatrixResult]) -> String {
    let grid = Grid::for_procs(PAR2D_PROCS);
    let cases = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": \"{}\", \"n\": {}, \"nnz\": {}, \"factor_nnz\": {}, \
                 \"nblocks\": {}, \"ntasks\": {},\n      \
                 \"nsubtrees\": {}, \"subtree_work_pct\": {:.1}, \
                 \"steal_attempts\": {}, \"steal_hits\": {}, \
                 \"analyze_secs\": {:.3},\n      \
                 \"model_secs\": {{\"seq\": {:.6}, \"par2d_cyclic\": {:.6}, \
                 \"par2d_taskdag\": {:.6}}},\n      \
                 \"speedup_vs_seq\": {{\"par2d_cyclic\": {:.4}, \
                 \"par2d_taskdag\": {:.4}}}}}",
                r.name,
                r.n,
                r.nnz,
                r.factor_nnz,
                r.nblocks,
                r.ntasks,
                r.nsubtrees,
                r.subtree_work_ppm as f64 / 10_000.0,
                r.steal_attempts,
                r.steal_hits,
                r.analyze_secs,
                r.seq_secs,
                r.cyclic_secs,
                r.taskdag_secs,
                r.cyclic_speedup(),
                r.taskdag_speedup(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n     ");
    format!(
        "{{\"procs\": {}, \"grid\": [{}, {}], \"machine\": \"t3e\", \
         \"ordering\": \"natural\",\n    \"cases\": [\n     {cases}],\n    \
         \"geomean_speedup_vs_seq\": {{\"par2d_cyclic\": {:.4}, \
         \"par2d_taskdag\": {:.4}}}}}",
        grid.nprocs(),
        grid.pr,
        grid.pc,
        geomean(rows.iter().map(|r| r.cyclic_speedup())),
        geomean(rows.iter().map(|r| r.taskdag_speedup())),
    )
}

/// Assemble the `BENCH_lu.json` document from section texts. A section
/// the current invocation did not measure is passed through verbatim
/// from the previous record (see [`extract_section`]); a missing
/// `matrices` section renders as an empty array so the document stays
/// parseable.
fn render_document(matrices: Option<&str>, headline: Option<&str>, large: Option<&str>) -> String {
    let grid = Grid::for_procs(PAR2D_PROCS);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"lu_factor\",\n");
    json.push_str(&format!(
        "  \"drivers\": {{\"seq\": 1, \"par1d\": {PAR1D_PROCS}, \"par2d\": [{}, {}]}},\n",
        grid.pr, grid.pc
    ));
    json.push_str(&format!("  \"matrices\": {}", matrices.unwrap_or("[]")));
    if let Some(h) = headline {
        json.push_str(&format!(",\n  \"headline\": {h}"));
    }
    if let Some(l) = large {
        json.push_str(&format!(",\n  \"large_suite\": {l}"));
    }
    json.push_str("\n}\n");
    json
}

/// Render the measured small-suite benchmark as a full document (no
/// large-tier section) — the historical `BENCH_lu.json` shape plus the
/// geomean headline.
pub fn render_json(
    rows: &[MatrixResult],
    prev: Option<&std::collections::HashMap<(String, String), f64>>,
) -> String {
    render_document(
        Some(&matrices_json(rows, prev)),
        Some(&headline_json(rows)),
        None,
    )
}

/// Extract the verbatim text of a top-level section's value (`[...]` or
/// `{...}`) from a previously rendered document, by balanced-delimiter
/// scan from the first occurrence of `"key": `. Sound here because the
/// renderer never puts brackets inside strings and emits `matrices`
/// before any nested object that repeats a key. `None` when the key is
/// absent (older records).
fn extract_section<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let at = text.find(&format!("\"{key}\":"))?;
    let rest = &text[at..];
    let open = rest.find(['[', '{'])?;
    let (oc, cc) = match rest.as_bytes()[open] {
        b'[' => (b'[', b']'),
        _ => (b'{', b'}'),
    };
    let mut depth = 0usize;
    for (i, &b) in rest.as_bytes()[open..].iter().enumerate() {
        if b == oc {
            depth += 1;
        } else if b == cc {
            depth -= 1;
            if depth == 0 {
                return Some(&rest[open..open + i + 1]);
            }
        }
    }
    None
}

/// Regression tolerance in percent, from `SPLU_BENCH_TOL_PCT` (default
/// 15 — generous because the simulated-processor rates are noisy).
pub fn tolerance_pct() -> f64 {
    std::env::var("SPLU_BENCH_TOL_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0)
}

/// Gate the fresh rows against a previous record: any driver rate more
/// than `tol_pct` percent below its recorded value is a failure.
pub fn gate_against(
    rows: &[MatrixResult],
    prev: &std::collections::HashMap<(String, String), f64>,
    tol_pct: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for r in rows {
        for (d, g) in [
            ("seq", r.seq.gflops),
            ("par1d", r.par1d.gflops),
            ("par2d", r.par2d.gflops),
        ] {
            if let Some(&p) = prev.get(&(r.name.to_string(), d.to_string())) {
                if g < p * (1.0 - tol_pct / 100.0) {
                    failures.push(format!(
                        "{}/{d}: {g:.4} GFLOP/s is more than {tol_pct}% below \
                         the recorded {p:.4}",
                        r.name
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "benchmark regression:\n  {}",
            failures.join("\n  ")
        ))
    }
}

/// Run the selected suite and write `out`, comparing against the
/// previous record at `baseline` (default: the existing contents of
/// `out`). The section the invocation does not measure is carried
/// forward verbatim from the baseline, so alternating small/large runs
/// keep one complete record. Returns an error on I/O failure or on a
/// regression beyond [`tolerance_pct`] (measurement itself panics on
/// solver bugs — those should never be reported as a benchmark result).
pub fn run_suite(
    out: &str,
    min_secs: f64,
    baseline: Option<&str>,
    lookahead: usize,
    sel: SuiteSel,
) -> Result<(), String> {
    let baseline_text = std::fs::read_to_string(baseline.unwrap_or(out)).ok();
    let bt = baseline_text.as_deref();
    let json;
    let gate: Box<dyn FnOnce() -> Result<(), String>>;
    match sel {
        SuiteSel::Small => {
            let prev = bt.and_then(parse_rates);
            let prev_shares = bt.and_then(parse_pivot_wait_shares);
            let prev_headline = bt.and_then(parse_headline);
            let mut rows = Vec::new();
            for name in MATRICES {
                let r = bench_matrix(name, min_secs, lookahead);
                eprintln!(
                    "{:<9} n={:<5} seq {:7.4} GFLOP/s (scratch {} B, warmed grow events {})  \
                     par1d {:7.4}  par2d {:7.4} (W={})  update gemm/scatter/wait \
                     {:.1}/{:.1}/{:.1} ms",
                    r.name,
                    r.n,
                    r.seq.gflops,
                    r.seq.scratch_peak_bytes,
                    r.seq_warmed_grow_events,
                    r.par1d.gflops,
                    r.par2d.gflops,
                    r.par2d_lookahead,
                    r.seq.update.gemm_secs * 1e3,
                    r.seq.update.scatter_secs * 1e3,
                    r.par2d.update.wait_secs * 1e3,
                );
                for p in &r.par2d_sweep {
                    eprintln!(
                        "          W={} par2d {:7.4} GFLOP/s  wait {:.1} ms \
                         (critical-path {:.1} ms, {} hits, {} deferred)",
                        p.lookahead,
                        p.gflops,
                        p.update_wait_secs * 1e3,
                        p.panel_wait_secs * 1e3,
                        p.lookahead_hits,
                        p.deferred_updates,
                    );
                }
                rows.push(r);
            }
            let (h1, h2) = headline_speedups(&rows);
            eprintln!("headline geomean speedup_vs_seq: par1d {h1:.4}  par2d {h2:.4}");
            json = render_document(
                Some(&matrices_json(&rows, prev.as_ref())),
                Some(&headline_json(&rows)),
                bt.and_then(|t| extract_section(t, "large_suite")),
            );
            gate = Box::new(move || {
                if let Some(shares) = &prev_shares {
                    gate_attribution_against(&rows, shares, tolerance_pct())?;
                }
                gate_headline(&rows, prev_headline, tolerance_pct())?;
                match &prev {
                    Some(prev) => gate_against(&rows, prev, tolerance_pct()),
                    None => {
                        println!("no previous record to gate against");
                        Ok(())
                    }
                }
            });
        }
        SuiteSel::Large | SuiteSel::LargeSmoke => {
            let names = if sel == SuiteSel::Large {
                suite::XLARGE
            } else {
                suite::XLARGE_SMOKE
            };
            let prev_large = bt.and_then(parse_large_speedups);
            let mut rows = Vec::new();
            for &name in names {
                let r = bench_large_matrix(name);
                eprintln!(
                    "{:<11} n={:<6} factor_nnz={:<9} blocks={:<5} subtrees={:<3} \
                     subtree work {:4.1}%  analyze {:6.2}s  modeled seq {:8.4}s  \
                     cyclic {:8.4}s ({:4.2}x)  taskdag {:8.4}s ({:4.2}x)",
                    r.name,
                    r.n,
                    r.factor_nnz,
                    r.nblocks,
                    r.nsubtrees,
                    r.subtree_work_ppm as f64 / 10_000.0,
                    r.analyze_secs,
                    r.seq_secs,
                    r.cyclic_secs,
                    r.cyclic_speedup(),
                    r.taskdag_secs,
                    r.taskdag_speedup(),
                );
                rows.push(r);
            }
            eprintln!(
                "large-suite geomean speedup_vs_seq: par2d_cyclic {:.4}  par2d_taskdag {:.4}",
                geomean(rows.iter().map(|r| r.cyclic_speedup())),
                geomean(rows.iter().map(|r| r.taskdag_speedup())),
            );
            json = render_document(
                bt.and_then(|t| extract_section(t, "matrices")),
                bt.and_then(|t| extract_section(t, "headline")),
                Some(&large_json(&rows)),
            );
            // the model is deterministic, so even the smoke tier can
            // hold the > 1.0 acceptance floor without flakiness
            gate = Box::new(move || gate_large(&rows, prev_large.as_ref(), tolerance_pct(), true));
        }
    }
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    gate()
}

/// [`run_suite`] on the small (measured) suite.
pub fn run_opts(
    out: &str,
    min_secs: f64,
    baseline: Option<&str>,
    lookahead: usize,
) -> Result<(), String> {
    run_suite(out, min_secs, baseline, lookahead, SuiteSel::Small)
}

/// [`run_opts`] with the default baseline (the previous contents of
/// `out`) and the default lookahead window.
pub fn run(out: &str, min_secs: f64) -> Result<(), String> {
    run_opts(out, min_secs, None, DEFAULT_LOOKAHEAD)
}
