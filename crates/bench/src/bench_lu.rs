//! End-to-end factorization benchmark: the sequential, 1D and 2D drivers
//! over a small synthetic suite, recording GFLOP/s and the peak
//! scratch-arena footprint of each driver.
//!
//! This is the perf-trajectory anchor (`results/BENCH_lu.json`): every
//! run records, per matrix,
//!
//! * `seq` — the scratched sequential driver, timed on a **warmed**
//!   arena; `warmed_grow_events` must be 0 (the allocation-free proof:
//!   once the arena has seen the pattern's shapes, the numeric loop
//!   performs no heap allocation),
//! * `par1d` — the 1D compute-ahead code on `PAR1D_PROCS` simulated
//!   processors,
//! * `par2d` — the 2D asynchronous code on a `Grid::for_procs` grid.
//!
//! GFLOP/s = (gemm + other flops) / wall seconds of the numeric phase.
//! The host simulates processors with threads, so the parallel rates are
//! trend lines, not speedups — the gate in `verify.sh` only checks the
//! file is well-formed and every rate is positive.

use splu_core::par1d::{factor_par1d_opts, Strategy1d};
use splu_core::par2d::{factor_par2d_opts, Sync2d};
use splu_core::seq::factor_sequential_scratched;
use splu_core::{BlockMatrix, FactorOptions, FactorScratch, FactorStats, SparseLuSolver};
use splu_machine::Grid;
use splu_probe::Probe;
use splu_sparse::suite;
use std::time::Instant;

/// Default output path, relative to the repo root.
pub const DEFAULT_OUT: &str = "results/BENCH_lu.json";
/// Matrices benchmarked by default (≥ 3, all quick to factor).
pub const MATRICES: [&str; 3] = ["sherman5", "jpwh991", "orsreg1"];
/// Simulated processors for the 1D driver.
pub const PAR1D_PROCS: usize = 2;
/// Simulated processors for the 2D driver (`Grid::for_procs`).
pub const PAR2D_PROCS: usize = 4;

/// One driver's measurement.
pub struct DriverResult {
    pub gflops: f64,
    pub scratch_peak_bytes: u64,
}

/// One matrix row of the benchmark.
pub struct MatrixResult {
    pub name: &'static str,
    pub n: usize,
    pub nnz: usize,
    pub seq: DriverResult,
    /// Grow events of the final (warmed) sequential run — 0 proves the
    /// steady-state factorization loop is allocation-free.
    pub seq_warmed_grow_events: u64,
    pub par1d: DriverResult,
    pub par2d: DriverResult,
}

fn gflops(stats: &FactorStats, secs: f64) -> f64 {
    (stats.gemm_flops + stats.other_flops) as f64 / secs.max(1e-9) / 1e9
}

/// Best rate over repeated runs totalling at least `min_secs`; `run`
/// returns the run's stats and its numeric-phase wall seconds.
fn best_rate(
    min_secs: f64,
    mut run: impl FnMut() -> (FactorStats, f64),
) -> (DriverResult, FactorStats) {
    let mut best = 0.0f64;
    let mut spent = 0.0f64;
    loop {
        let (stats, dt) = run();
        spent += dt;
        best = best.max(gflops(&stats, dt));
        if spent >= min_secs {
            let peak = stats.scratch_peak_bytes;
            return (
                DriverResult {
                    gflops: best,
                    scratch_peak_bytes: peak,
                },
                stats,
            );
        }
    }
}

/// Benchmark one matrix across the three drivers. `min_secs` is the
/// per-driver measurement budget (best rate over repeated runs).
pub fn bench_matrix(name: &'static str, min_secs: f64) -> MatrixResult {
    let spec = suite::by_name(name).unwrap_or_else(|| panic!("unknown suite matrix `{name}`"));
    let a = spec.build_scaled(1.0);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let grid = Grid::for_procs(PAR2D_PROCS);
    let probe = Probe::disabled();

    // sequential, on a reused arena: run 0 warms the buffers (untimed),
    // every later run must not grow them.
    let mut scratch = FactorScratch::new();
    let mut blocks = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    factor_sequential_scratched(&mut blocks, 1.0, &probe, &mut scratch).expect("seq warm-up");
    let (seq, seq_stats) = best_rate(min_secs, || {
        let mut blocks = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
        let t0 = Instant::now();
        let (_, stats) =
            factor_sequential_scratched(&mut blocks, 1.0, &probe, &mut scratch).expect("seq");
        (stats, t0.elapsed().as_secs_f64())
    });
    assert_eq!(
        seq_stats.scratch_grow_events, 0,
        "warmed sequential factorization grew scratch buffers"
    );
    let seq_warmed_grow_events = seq_stats.scratch_grow_events;

    // parallel drivers: the runtime reports the parallel-section wall
    // time; fresh per-processor arenas each run, so take the best rate
    // over the budget (thread start-up noise dominates single runs).
    let (par1d, _) = best_rate(min_secs, || {
        let r = factor_par1d_opts(
            &solver.permuted,
            solver.pattern.clone(),
            PAR1D_PROCS,
            Strategy1d::ComputeAhead,
            1.0,
        );
        (r.stats, r.elapsed)
    });
    let (par2d, _) = best_rate(min_secs, || {
        let r = factor_par2d_opts(
            &solver.permuted,
            solver.pattern.clone(),
            grid,
            Sync2d::Async,
            1.0,
        );
        (r.stats, r.elapsed)
    });

    MatrixResult {
        name,
        n: a.ncols(),
        nnz: a.nnz(),
        seq,
        seq_warmed_grow_events,
        par1d,
        par2d,
    }
}

/// Render the benchmark rows as the `BENCH_lu.json` document.
pub fn render_json(rows: &[MatrixResult]) -> String {
    let grid = Grid::for_procs(PAR2D_PROCS);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"lu_factor\",\n");
    json.push_str(&format!(
        "  \"drivers\": {{\"seq\": 1, \"par1d\": {PAR1D_PROCS}, \"par2d\": [{}, {}]}},\n",
        grid.pr, grid.pc
    ));
    json.push_str("  \"matrices\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {},\n",
            r.name, r.n, r.nnz
        ));
        json.push_str(&format!(
            "     \"seq\": {{\"gflops\": {:.4}, \"scratch_peak_bytes\": {}, \
             \"warmed_grow_events\": {}}},\n",
            r.seq.gflops, r.seq.scratch_peak_bytes, r.seq_warmed_grow_events
        ));
        json.push_str(&format!(
            "     \"par1d\": {{\"gflops\": {:.4}, \"scratch_peak_bytes\": {}}},\n",
            r.par1d.gflops, r.par1d.scratch_peak_bytes
        ));
        json.push_str(&format!(
            "     \"par2d\": {{\"gflops\": {:.4}, \"scratch_peak_bytes\": {}}}}}{}\n",
            r.par2d.gflops,
            r.par2d.scratch_peak_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Run the full benchmark and write `out`. Returns an error string on
/// I/O failure (measurement itself panics on solver bugs — those should
/// never be reported as a benchmark result).
pub fn run(out: &str, min_secs: f64) -> Result<(), String> {
    let mut rows = Vec::new();
    for name in MATRICES {
        let r = bench_matrix(name, min_secs);
        eprintln!(
            "{:<9} n={:<5} seq {:7.4} GFLOP/s (scratch {} B, warmed grow events {})  \
             par1d {:7.4}  par2d {:7.4}",
            r.name,
            r.n,
            r.seq.gflops,
            r.seq.scratch_peak_bytes,
            r.seq_warmed_grow_events,
            r.par1d.gflops,
            r.par2d.gflops,
        );
        rows.push(r);
    }
    let json = render_json(&rows);
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}
