//! Table 2 — sequential performance: S\* versus the SuperLU-like baseline.
//!
//! For each matrix: measured wall-clock factorization time of the S\*
//! sequential code and of the Gilbert–Peierls baseline (same preprocessed
//! matrix), the achieved MFLOPS (paper convention: baseline operation
//! count / time — overestimated flops are not credited), the measured
//! time ratio, and the §6.1 cost-model projection of the same ratio on
//! Cray T3D and T3E (the paper's `(1−r)·w2 + r·w3` versus `(1+h)·w2`
//! analysis with the *measured* BLAS-3 fraction `r` and ops ratio).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table2_sequential
//! ```

use splu_bench::{analyze_default, baseline_on_permuted, build_default, rule, secs};
use splu_machine::{T3D, T3E};
use splu_sparse::suite;
use std::time::Instant;

fn main() {
    println!("Table 2: sequential performance — S* vs SuperLU-like baseline");
    println!("(host wall-clock; T3D/T3E ratio columns are cost-model projections, h = 0.82)\n");
    println!(
        "{:<10} | {:>9} {:>8} | {:>9} {:>8} | {:>7} {:>8} {:>8}",
        "matrix", "S* time", "MFLOPS", "GP time", "MFLOPS", "ratio", "T3D-rat", "T3E-rat"
    );
    println!("{}", rule(86));

    let names: Vec<&str> = suite::SMALL
        .iter()
        .copied()
        .chain(["goodwin", "b33_5600", "dense1000"])
        .collect();

    for name in names {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);

        // S* numeric factorization (analysis excluded, as in the paper:
        // S* times exclude symbolic preprocessing, which is static)
        let t0 = Instant::now();
        let lu = solver.factor().expect("nonsingular");
        let t_sstar = t0.elapsed().as_secs_f64();

        // baseline (includes its on-the-fly symbolic work, as SuperLU does)
        let t0 = Instant::now();
        let gp = baseline_on_permuted(&solver);
        let t_gp = t0.elapsed().as_secs_f64();

        let mflops_sstar = gp.flops as f64 / t_sstar / 1e6;
        let mflops_gp = gp.flops as f64 / t_gp / 1e6;
        let ratio = t_sstar / t_gp;

        // §6.1 model projection with measured r and ops ratio
        let r = lu.stats.blas3_fraction();
        let ops_sstar = lu.stats.gemm_flops + lu.stats.other_flops;
        let t3d = T3D.sequential_time(ops_sstar, r) / T3D.superlu_time(gp.flops, 0.82);
        let t3e = T3E.sequential_time(ops_sstar, r) / T3E.superlu_time(gp.flops, 0.82);

        println!(
            "{:<10} | {:>9} {:>8.1} | {:>9} {:>8.1} | {:>7.2} {:>8.2} {:>8.2}",
            name,
            secs(t_sstar),
            mflops_sstar,
            secs(t_gp),
            mflops_gp,
            ratio,
            t3d,
            t3e
        );
    }
    println!("{}", rule(86));
    println!(
        "paper's claim to check: S* stays competitive with the baseline despite the\n\
         extra static flops (paper measures ratios ~0.4–2 across machines), and the\n\
         BLAS-3 advantage makes the projected ratio smaller on T3E than on T3D."
    );
}
