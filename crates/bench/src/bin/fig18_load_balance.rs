//! Fig. 18 — load balance factors of the 1D graph-scheduled mapping and
//! the 2D block-cyclic mapping: `work_total / (P · work_max)` counting
//! update work only.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin fig18_load_balance
//! ```

use splu_bench::{analyze_default, build_default, rule};
use splu_machine::{Grid, T3E};
use splu_sched::load_balance::{load_balance_factor, load_balance_factor_2d};
use splu_sched::{graph_schedule, TaskGraph};
use splu_sparse::suite;

fn main() {
    let p = 32usize;
    println!("Fig. 18: load balance factors at P = {p} (1.0 = perfect)\n");
    println!("{:<10} {:>8} {:>8}", "matrix", "1D", "2D");
    println!("{}", rule(28));

    let (mut sum1, mut sum2, mut count) = (0.0f64, 0.0f64, 0);
    for name in suite::SMALL.iter().copied().chain(["goodwin", "e40r0100"]) {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        let g = TaskGraph::build(&solver.pattern);
        let s = graph_schedule(&g, p, &T3E);
        let f1 = load_balance_factor(&g, &s.proc_of, p, &T3E);
        let f2 = load_balance_factor_2d(&solver.pattern, Grid::for_procs(p), &T3E);
        println!("{name:<10} {f1:>8.3} {f2:>8.3}");
        sum1 += f1;
        sum2 += f2;
        count += 1;
    }
    println!("{}", rule(28));
    println!(
        "mean:      {:>8.3} {:>8.3}",
        sum1 / count as f64,
        sum2 / count as f64
    );
    println!(
        "\npaper's claim to check: the 2D block-cyclic mapping has the better load\n\
         balance on most matrices, which partially compensates for its simpler\n\
         task ordering (explains the narrow gaps in Fig. 17)."
    );
}
