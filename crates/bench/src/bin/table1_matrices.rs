//! Table 1 — testing matrices and their statistics.
//!
//! Columns, as in the paper: identifier, order, nnz(A), structural
//! symmetry number, factor entries per nnz(A) for (a) the Cholesky factor
//! of `AᵀA` (George–Ng's loose bound), (b) the SuperLU-like baseline's
//! actual `L+U`, (c) the S\* static prediction; the `S*/SuperLU` factor
//! entry ratio ("usually less than 50 % extra") and the floating-point
//! operation ratio ("can be as high as five times").
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table1_matrices
//! ```

use splu_bench::{analyze_default, baseline_on_permuted, build_default, rule};
use splu_sparse::pattern::{ata_pattern, cholesky_fill_count, structural_symmetry};
use splu_sparse::suite;

fn main() {
    println!("Table 1: testing matrices and their statistics");
    println!(
        "(synthetic stand-ins; large matrices scaled by {}; ratios vs the \
         Gilbert–Peierls baseline on the same preprocessed matrix)\n",
        splu_bench::LARGE_SCALE
    );
    println!(
        "{:<10} {:>7} {:>9} {:>5} | {:>9} {:>9} {:>9} | {:>8} {:>8}",
        "matrix", "n", "nnz(A)", "sym", "AtA/|A|", "GP/|A|", "S*/|A|", "S*/GP", "ops-rat"
    );
    println!("{}", rule(96));

    for spec in suite::all() {
        let (a, _scale) = build_default(&spec);
        let solver = analyze_default(&a);
        let sym = structural_symmetry(&a);

        // (a) Cholesky of AᵀA bound (on the permuted matrix, same order):
        // struct(L_c) bounds the L and U structures EACH, so the bound on
        // total factor entries is 2·nnz(L_c) − n.
        let (chol_l, _) = cholesky_fill_count(&ata_pattern(&solver.permuted));
        let chol_nnz = 2 * chol_l - a.nrows();
        // (b) baseline actual factors
        let gp = baseline_on_permuted(&solver);
        // (c) S* static prediction
        let sstar_nnz = solver.static_factor_nnz();
        let ops_ratio = solver.structure.predicted_flops() as f64 / gp.flops as f64;

        let nnz_a = a.nnz() as f64;
        println!(
            "{:<10} {:>7} {:>9} {:>5.2} | {:>9.1} {:>9.1} {:>9.1} | {:>8.2} {:>8.2}",
            spec.name,
            a.nrows(),
            a.nnz(),
            sym,
            chol_nnz as f64 / nnz_a,
            gp.factor_nnz() as f64 / nnz_a,
            sstar_nnz as f64 / nnz_a,
            sstar_nnz as f64 / gp.factor_nnz() as f64,
            ops_ratio,
        );
    }
    println!("{}", rule(96));
    println!(
        "paper's claims to check: S*/GP factor-entry ratio mostly < 1.5; \
         chol(AtA) bound much looser; ops ratio up to ~5."
    );
}
