//! Fig. 16 — impact of scheduling strategy on the 1D code:
//! `1 − PT_RAPID / PT_CA` for P = 2…64 (T3E model).
//!
//! The RAPID variant uses graph scheduling with the zero-copy one-sided
//! receive model; the compute-ahead variant uses the Fig. 10 order with
//! conventional buffered receives (one copy per incoming remote message)
//! — the transport difference the paper credits RAPID's run-time with.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin fig16_sched_compare
//! ```

use splu_bench::{analyze_default, build_default, rule};
use splu_machine::T3E;
use splu_sched::sim::{simulate_opts, SimOptions};
use splu_sched::{ca_schedule, graph_schedule, TaskGraph};
use splu_sparse::suite;

fn main() {
    let procs = [2usize, 4, 8, 16, 32, 64];
    println!("Fig. 16: 1 − PT_RAPID/PT_CA (positive = graph scheduling wins), T3E model\n");
    print!("{:<10}", "matrix");
    for p in procs {
        print!(" {:>7}", format!("P={p}"));
    }
    println!();
    println!("{}", rule(10 + 8 * procs.len()));

    let buffered = SimOptions {
        recv_copy_per_word: T3E.beta,
    };
    let zerocopy = SimOptions::default();

    for name in suite::SMALL
        .iter()
        .copied()
        .chain(["goodwin", "e40r0100", "b33_5600"])
    {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        let g = TaskGraph::build(&solver.pattern);
        print!("{name:<10}");
        for p in procs {
            let ca = simulate_opts(&g, &ca_schedule(&g, p), &T3E, buffered).makespan;
            let gs = simulate_opts(&g, &graph_schedule(&g, p, &T3E), &T3E, zerocopy).makespan;
            print!(" {:>6.1}%", 100.0 * (1.0 - gs / ca));
        }
        println!();
    }
    println!("{}", rule(10 + 8 * procs.len()));
    println!(
        "paper's shape to check: small (even negative) differences at P ≤ 4,\n\
         growing RAPID advantage as processors increase (paper: 10–40 % for P > 4;\n\
         our overlap-friendly transport model flatters CA below P = 32 — see\n\
         EXPERIMENTS.md for the discussion)."
    );
}
