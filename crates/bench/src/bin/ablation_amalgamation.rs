//! Ablation — amalgamation-factor sweep (the paper finds r ∈ [4, 6] best).
//!
//! For r = 0…12: supernode count, average width, storage padding over the
//! static pattern, sequential factor time, and projected 8-processor
//! parallel time (T3E).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin ablation_amalgamation
//! ```

use splu_bench::{rule, secs};
use splu_core::{FactorOptions, SparseLuSolver};
use splu_machine::T3E;
use splu_order::ColumnOrdering;
use splu_sched::{graph_schedule, simulate, TaskGraph};
use splu_sparse::suite;
use std::time::Instant;

fn main() {
    let spec = suite::by_name("sherman3").unwrap();
    let a = spec.build();
    println!(
        "Ablation: amalgamation-factor sweep on {} (n = {})\n",
        spec.name,
        a.nrows()
    );
    println!(
        "{:<4} {:>8} {:>9} {:>10} {:>9} {:>12}",
        "r", "blocks", "avg w", "padding%", "seq time", "PT(8,T3E)"
    );
    println!("{}", rule(58));
    for r in [0usize, 1, 2, 4, 6, 8, 12] {
        let solver = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                block_size: 25,
                amalgamation: r,
                ordering: ColumnOrdering::MinDegreeAtA,
                ..FactorOptions::default()
            },
        );
        let static_nnz = solver.static_factor_nnz();
        let padding = 100.0 * (solver.pattern.storage_entries() as f64 / static_nnz as f64 - 1.0);
        let t0 = Instant::now();
        let _lu = solver.factor().expect("nonsingular");
        let t = t0.elapsed().as_secs_f64();
        let g = TaskGraph::build(&solver.pattern);
        let pt = simulate(&g, &graph_schedule(&g, 8, &T3E), &T3E).makespan;
        println!(
            "{:<4} {:>8} {:>9.2} {:>9.1}% {:>9} {:>12}",
            r,
            solver.pattern.nblocks(),
            solver.pattern.part.avg_width(),
            padding,
            secs(t),
            secs(pt),
        );
    }
    println!("{}", rule(58));
    println!(
        "expected: moderate r merges the 1.5–2-column supernodes into larger\n\
         blocks (better BLAS-3, fewer messages) at the cost of padded zeros;\n\
         beyond r ≈ 6 padding grows faster than the granularity gain —\n\
         the paper's 10–60 % sequential improvement window."
    );
}
