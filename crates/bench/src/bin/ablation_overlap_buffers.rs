//! Ablation — Theorem 2 overlap degrees and §5.2 buffer space, measured
//! on the *thread* backend (the real asynchronous 2D execution).
//!
//! * overlap degree across all processors must stay ≤ `p_c`;
//! * overlap degree within a processor column ≤ `min(p_r − 1, p_c)`;
//! * the barrier variant must measure zero stage overlap;
//! * peak parked-message bytes per processor ≈ the paper's
//!   `2.5 · n · BSIZE · s` Cbuffer/Rbuffer estimate.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin ablation_overlap_buffers
//! ```

use splu_bench::rule;
use splu_core::par2d::{factor_par2d, Sync2d};
use splu_core::{FactorOptions, SparseLuSolver};
use splu_machine::Grid;
use splu_sparse::suite;

fn main() {
    println!("Ablation: Theorem 2 overlap degrees + buffer space (thread backend)\n");
    println!(
        "{:<10} {:<6} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "matrix", "grid", "overlap", "bound", "in-col", "bound", "peak buf", "paper est"
    );
    println!("{}", rule(84));

    for name in ["sherman5", "orsreg1", "saylr4"] {
        let spec = suite::by_name(name).unwrap();
        let a = spec.build_scaled(0.5);
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        for (pr, pc) in [(2usize, 2usize), (2, 4), (3, 3)] {
            let grid = Grid::new(pr, pc);
            let r = factor_par2d(
                &solver.permuted,
                solver.pattern.clone(),
                grid,
                Sync2d::Async,
            );
            let overlap = r.overlap_degree();
            let in_col = (0..pc as u32)
                .map(|c| r.overlap_degree_within_col(c))
                .max()
                .unwrap_or(0);
            let peak = *r.peak_buffer_bytes.iter().max().unwrap_or(&0);
            // §5.2 estimate: 2.5 · n · BSIZE · s words, s = fill density
            let n = a.ncols() as f64;
            let s = solver.static_factor_nnz() as f64 / (n * n);
            let est_bytes = (2.5 * n * 25.0 * s * 8.0) as u64;
            println!(
                "{:<10} {:<6} {:>8} {:>8} {:>8} {:>10} {:>11}K {:>11}K",
                name,
                format!("{pr}x{pc}"),
                overlap,
                pc,
                in_col,
                (pr - 1).min(pc),
                peak / 1024,
                est_bytes / 1024,
            );
            assert!(overlap as usize <= pc, "Theorem 2 violated!");
        }
    }
    println!("{}", rule(84));

    // barrier variant: zero overlap
    let spec = suite::by_name("sherman5").unwrap();
    let a = spec.build_scaled(0.5);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let r = factor_par2d(
        &solver.permuted,
        solver.pattern.clone(),
        Grid::new(2, 2),
        Sync2d::Barrier,
    );
    println!(
        "\nbarrier variant stage overlap: {} (must be 0)",
        r.overlap_degree()
    );
    assert_eq!(r.overlap_degree(), 0);
    println!(
        "\nTheorem 2 bounds hold on every run; peak buffer occupancy is the same\n\
         order as the paper's 2.5·n·BSIZE·s estimate (both < 100K words here)."
    );
}
