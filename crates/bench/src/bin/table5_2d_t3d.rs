//! Table 5 — 2D asynchronous code on large matrices, Cray T3D model,
//! P = 16 / 32 / 64 (time and MFLOPS).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table5_2d_t3d
//! ```

use splu_bench::{analyze_default, baseline_on_permuted, build_default, rule, secs};
use splu_machine::{Grid, T3D};
use splu_sched::{build_2d_model, simulate, Mode2d};
use splu_sparse::suite;

fn main() {
    let procs = [16usize, 32, 64];
    println!("Table 5: 2D asynchronous code on large matrices (T3D model)");
    println!("(matrices scaled by {})\n", splu_bench::LARGE_SCALE);
    print!("{:<10}", "matrix");
    for p in procs {
        print!(" {:>10} {:>8}", format!("P={p} time"), "MFLOPS");
    }
    println!();
    println!("{}", rule(10 + 20 * procs.len()));

    for name in ["goodwin", "e40r0100", "ex11", "raefsky4", "vavasis3"] {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        let gp = baseline_on_permuted(&solver);
        print!("{name:<10}");
        for p in procs {
            let grid = Grid::for_procs(p);
            let m = build_2d_model(&solver.pattern, grid, &T3D, Mode2d::Async);
            let t = simulate(&m.graph, &m.schedule, &T3D).makespan;
            print!(" {:>10} {:>8.1}", secs(t), gp.flops as f64 / t / 1e6);
        }
        println!();
    }
    println!("{}", rule(10 + 20 * procs.len()));
    println!(
        "paper's shape to check: MFLOPS grow with P (the paper reaches 1.48 GFLOPS\n\
         on 64 T3D nodes at full scale; scaled matrices saturate earlier)."
    );
}
