//! Ablation — processor-grid aspect ratio sweep for the 2D code.
//!
//! The paper: "setting p_r ≤ p_c + 1 always leads to better performance"
//! and "in practice, we set p_c / p_r = 2". This sweep projects the 2D
//! asynchronous time for every factorization of P = 16 and P = 64 on the
//! T3E model.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin ablation_aspect_ratio
//! ```

use splu_bench::{analyze_default, build_default, rule, secs};
use splu_machine::{Grid, T3E};
use splu_sched::{build_2d_model, simulate, Mode2d};
use splu_sparse::suite;

fn main() {
    println!("Ablation: 2D grid aspect-ratio sweep (T3E model)\n");
    for name in ["goodwin", "e40r0100"] {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        for p in [16usize, 64] {
            println!("{name}, P = {p}:");
            println!("{:<10} {:>12} {:>10}", "grid", "PT", "vs best");
            println!("{}", rule(36));
            let mut results: Vec<(String, f64)> = Vec::new();
            let mut pr = 1usize;
            while pr <= p {
                if p % pr == 0 {
                    let grid = Grid::new(pr, p / pr);
                    let m = build_2d_model(&solver.pattern, grid, &T3E, Mode2d::Async);
                    let t = simulate(&m.graph, &m.schedule, &T3E).makespan;
                    results.push((format!("{}x{}", grid.pr, grid.pc), t));
                }
                pr += 1;
            }
            let best = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
            for (g, t) in &results {
                println!(
                    "{:<10} {:>12} {:>9.0}%",
                    g,
                    secs(*t),
                    100.0 * (t / best - 1.0)
                );
            }
            println!();
        }
    }
    println!(
        "expected: wide grids (p_c ≥ p_r) win — row interchanges and the pivot\n\
         search stay cheap while update parallelism is preserved; extreme\n\
         shapes (P×1) serialize one of the two phases. The paper settles on\n\
         p_c/p_r = 2."
    );
}
