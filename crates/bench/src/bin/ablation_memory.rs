//! Ablation — per-processor memory: 1D versus 2D data mapping (§5.2).
//!
//! The paper's space argument for the 2D code: a 1D mapping must hold
//! whole column blocks (and buffered panels of other columns), so its
//! per-processor space can approach the sequential footprint `S₁`; the 2D
//! block-cyclic mapping distributes every block, giving `S₁/p + O(small
//! buffers)`. This harness computes, from the block pattern, the maximum
//! per-processor storage (f64 entries) of both mappings, plus the measured
//! peak message-buffer bytes from real thread runs.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin ablation_memory
//! ```

use splu_bench::{analyze_default, rule};
use splu_core::par1d::{factor_par1d, Strategy1d};
use splu_core::par2d::{factor_par2d, Sync2d};
use splu_machine::{Grid, T3E};
use splu_sparse::suite;
use splu_symbolic::BlockPattern;

/// Storage entries of column block `j` (diag + L panel + U panels).
fn col_block_entries(p: &BlockPattern, j: usize) -> usize {
    let w = p.part.width(j);
    let mut total = w * w;
    for l in &p.l_blocks[j] {
        total += l.rows.len() * w;
    }
    // U blocks stored with their column block
    for k in 0..j {
        if let Some(u) = p.u_block(k, j) {
            total += u.cols.len() * p.part.width(k);
        }
    }
    total
}

fn main() {
    println!("Ablation: per-processor storage, 1D vs 2D mapping (entries, max over procs)\n");
    println!(
        "{:<10} {:>10} | {:>10} {:>8} | {:>10} {:>8} | {:>9} {:>9}",
        "matrix", "S1", "1D max", "S1/max", "2D max", "S1/max", "RAPIDbuf", "2D buf"
    );
    println!("{}", rule(88));

    let p = 8usize;
    for name in ["sherman5", "orsreg1", "goodwin"] {
        let spec = suite::by_name(name).unwrap();
        let a = spec.build_scaled(0.5);
        let solver = analyze_default(&a);
        let pattern = &solver.pattern;
        let nb = pattern.nblocks();
        let s1: usize = (0..nb)
            .map(|j| col_block_entries(pattern, j))
            .collect::<Vec<_>>()
            .iter()
            .sum();

        // 1D cyclic: per-proc = sum of owned column blocks
        let mut per1 = vec![0usize; p];
        for j in 0..nb {
            per1[j % p] += col_block_entries(pattern, j);
        }
        let max1 = *per1.iter().max().unwrap();

        // 2D block-cyclic: per-proc = sum of owned blocks
        let grid = Grid::for_procs(p);
        let mut per2 = vec![0usize; p];
        for j in 0..nb {
            let w = pattern.part.width(j);
            per2[grid.owner_of_block(j, j)] += w * w;
            for l in &pattern.l_blocks[j] {
                per2[grid.owner_of_block(l.i as usize, j)] += l.rows.len() * w;
            }
            for k in 0..j {
                if let Some(u) = pattern.u_block(k, j) {
                    per2[grid.owner_of_block(k, j)] += u.cols.len() * pattern.part.width(k);
                }
            }
        }
        let max2 = *per2.iter().max().unwrap();

        // measured peak message buffers on the thread backend; the 1D
        // figure uses the RAPID-style schedule, whose aggressive stage
        // overlap is what §5.2 charges with O(S1)-level buffering
        let r1 = factor_par1d(
            &solver.permuted,
            solver.pattern.clone(),
            p,
            Strategy1d::GraphScheduled(T3E),
        );
        let r2 = factor_par2d(
            &solver.permuted,
            solver.pattern.clone(),
            grid,
            Sync2d::Async,
        );
        let buf1 = *r1.peak_buffer_bytes.iter().max().unwrap() / 1024;
        let buf2 = *r2.peak_buffer_bytes.iter().max().unwrap() / 1024;

        println!(
            "{:<10} {:>10} | {:>10} {:>7.1}x | {:>10} {:>7.1}x | {:>8}K {:>8}K",
            name,
            s1,
            max1,
            s1 as f64 / max1 as f64,
            max2,
            s1 as f64 / max2 as f64,
            buf1,
            buf2,
        );
    }
    println!("{}", rule(88));
    println!(
        "paper's claim to check (§5.2): the 2D mapping's per-processor share is\n\
         ≈ S1/p while the 1D mapping is less balanced, and the 1D code additionally\n\
         buffers whole pivot panels (its message buffers dominate the 2D code's)."
    );
}
