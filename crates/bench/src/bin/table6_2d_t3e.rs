//! Table 6 — 2D asynchronous code on the Cray T3E model, P = 8…128
//! (time and MFLOPS per matrix).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table6_2d_t3e
//! ```

use splu_bench::{analyze_default, baseline_on_permuted, build_default, rule, secs};
use splu_machine::{Grid, T3E};
use splu_sched::{build_2d_model, simulate, Mode2d};
use splu_sparse::suite;

fn main() {
    let procs = [8usize, 16, 32, 64, 128];
    println!("Table 6: 2D asynchronous code (T3E model), P = 8…128");
    println!("(large matrices scaled by {})\n", splu_bench::LARGE_SCALE);
    print!("{:<10}", "matrix");
    for p in procs {
        print!(" {:>9} {:>7}", format!("P={p}"), "MF");
    }
    println!();
    println!("{}", rule(10 + 18 * procs.len()));

    let mut best = 0.0f64;
    for name in suite::LARGE {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        let gp = baseline_on_permuted(&solver);
        print!("{name:<10}");
        for p in procs {
            let grid = Grid::for_procs(p);
            let m = build_2d_model(&solver.pattern, grid, &T3E, Mode2d::Async);
            let t = simulate(&m.graph, &m.schedule, &T3E).makespan;
            let mf = gp.flops as f64 / t / 1e6;
            best = best.max(mf);
            print!(" {:>9} {:>7.0}", secs(t), mf);
        }
        println!();
    }
    println!("{}", rule(10 + 18 * procs.len()));
    println!(
        "best projected rate: {best:.0} MFLOPS (paper reaches 8.38 GFLOPS on 128\n\
         T3E nodes at full matrix scale; our matrices are {}× smaller)",
        (1.0 / splu_bench::LARGE_SCALE) as u32
    );
}
