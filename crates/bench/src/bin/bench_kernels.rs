//! Micro-benchmark: blocked [`splu_kernels::dgemm`] vs the naive baseline
//! [`splu_kernels::dgemm_naive`] at square sizes 64 / 256 / 512.
//!
//! Writes `results/BENCH_kernels.json` so kernel regressions are visible
//! independently of the end-to-end factorization benchmarks. The headline
//! figure is `ratio_256` — the acceptance bar for the blocked kernel is
//! ≥ 1.5× over the naive kernel at 256×256×256.
//!
//! Usage: `bench_kernels [--out PATH] [--min-secs S]`

use splu_kernels::{dgemm_naive, dgemm_with, GemmScratch};
use std::time::Instant;

const SIZES: [usize; 3] = [64, 256, 512];

struct SizeResult {
    n: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
}

fn main() {
    let mut out = String::from("results/BENCH_kernels.json");
    let mut min_secs = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--min-secs" => {
                min_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-secs needs a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut results = Vec::new();
    for &n in &SIZES {
        let a: Vec<f64> = (0..n * n)
            .map(|i| ((i * 31) % 17) as f64 * 0.125 - 1.0)
            .collect();
        let b: Vec<f64> = (0..n * n)
            .map(|i| ((i * 13) % 23) as f64 * 0.0625 - 0.5)
            .collect();
        let mut c = vec![0.0f64; n * n];
        let mut scratch = GemmScratch::new();

        let naive = best_rate(n, min_secs, || {
            dgemm_naive(n, n, n, 1.0, &a, n, &b, n, 0.0, &mut c, n);
        });
        let blocked = best_rate(n, min_secs, || {
            dgemm_with(n, n, n, 1.0, &a, n, &b, n, 0.0, &mut c, n, &mut scratch);
        });
        // keep the result observable so the multiplies cannot be elided
        assert!(c.iter().sum::<f64>().is_finite());
        eprintln!(
            "n={n:4}  naive {naive:6.3} GFLOP/s   blocked {blocked:6.3} GFLOP/s   ratio {:.2}x",
            blocked / naive
        );
        results.push(SizeResult {
            n,
            naive_gflops: naive,
            blocked_gflops: blocked,
        });
    }

    let ratio_256 = results
        .iter()
        .find(|r| r.n == 256)
        .map(|r| r.blocked_gflops / r.naive_gflops)
        .unwrap();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"kernels_dgemm\",\n");
    json.push_str("  \"kernel\": \"blocked MC/KC/NC + 4x4 micro-kernel vs naive axpy\",\n");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"naive_gflops\": {:.4}, \"blocked_gflops\": {:.4}, \"ratio\": {:.4}}}{}\n",
            r.n,
            r.naive_gflops,
            r.blocked_gflops,
            r.blocked_gflops / r.naive_gflops,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"ratio_256\": {ratio_256:.4}\n}}\n"));

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out, json).expect("write BENCH_kernels.json");
    println!("wrote {out} (ratio_256 = {ratio_256:.2}x)");
}

/// Best GFLOP/s over repeated timed runs totalling at least `min_secs`.
fn best_rate(n: usize, min_secs: f64, mut run: impl FnMut()) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    run(); // warm-up (also sizes the pack buffers)
    let mut best = 0.0f64;
    let mut spent = 0.0f64;
    while spent < min_secs {
        let t0 = Instant::now();
        run();
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        spent += dt;
        best = best.max(flops / dt / 1e9);
    }
    best
}
