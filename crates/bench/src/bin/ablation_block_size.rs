//! Ablation — maximum block (supernode) size sweep.
//!
//! The paper fixes the block size at 25: "if the block size is too large,
//! the available parallelism will be reduced", while too-small blocks
//! forfeit BLAS-3 efficiency. This sweep measures, per block size:
//! sequential factor time (host), storage padding, BLAS-3 fraction, and
//! projected 16-processor parallel time (T3E).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin ablation_block_size
//! ```

use splu_bench::{rule, secs};
use splu_core::{FactorOptions, SparseLuSolver};
use splu_machine::T3E;
use splu_order::ColumnOrdering;
use splu_sched::{graph_schedule, simulate, TaskGraph};
use splu_sparse::suite;
use std::time::Instant;

fn main() {
    let spec = suite::by_name("sherman5").unwrap();
    let a = spec.build();
    println!(
        "Ablation: block-size sweep on {} (n = {})\n",
        spec.name,
        a.nrows()
    );
    println!(
        "{:<6} {:>9} {:>10} {:>8} {:>9} {:>12}",
        "bsize", "seq time", "storage", "blas3", "blocks", "PT(16,T3E)"
    );
    println!("{}", rule(60));
    for bsize in [4usize, 8, 16, 25, 40, 64] {
        let solver = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                block_size: bsize,
                amalgamation: 4,
                ordering: ColumnOrdering::MinDegreeAtA,
                ..FactorOptions::default()
            },
        );
        let t0 = Instant::now();
        let lu = solver.factor().expect("nonsingular");
        let t = t0.elapsed().as_secs_f64();
        let g = TaskGraph::build(&solver.pattern);
        let pt = simulate(&g, &graph_schedule(&g, 16, &T3E), &T3E).makespan;
        println!(
            "{:<6} {:>9} {:>10} {:>7.1}% {:>9} {:>12}",
            bsize,
            secs(t),
            solver.pattern.storage_entries(),
            100.0 * lu.stats.blas3_fraction(),
            solver.pattern.nblocks(),
            secs(pt),
        );
    }
    println!("{}", rule(60));
    println!(
        "expected: sequential time improves with larger blocks (BLAS-3 share),\n\
         but the projected parallel time bottoms out at a moderate size —\n\
         the trade-off behind the paper's choice of 25."
    );
}
