//! Table 7 — performance improvement of the asynchronous 2D code over the
//! synchronous (global-barrier-per-stage) 2D code:
//! `1 − PT_async / PT_sync` for P = 2…64, T3E model.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table7_async_vs_sync
//! ```

use splu_bench::{analyze_default, build_default, rule};
use splu_machine::{Grid, T3E};
use splu_sched::{build_2d_model, simulate, Mode2d};
use splu_sparse::suite;

fn main() {
    let procs = [2usize, 4, 8, 16, 32, 64];
    println!("Table 7: improvement of 2D asynchronous over 2D synchronous (T3E model)");
    println!(
        "(1 − PT_async/PT_sync; large matrices scaled by {})\n",
        splu_bench::LARGE_SCALE
    );
    print!("{:<10}", "matrix");
    for p in procs {
        print!(" {:>7}", format!("P={p}"));
    }
    println!();
    println!("{}", rule(10 + 8 * procs.len()));

    for name in suite::SMALL
        .iter()
        .copied()
        .chain(["goodwin", "e40r0100", "raefsky4", "vavasis3"])
    {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        print!("{name:<10}");
        for p in procs {
            let grid = Grid::for_procs(p);
            let ma = build_2d_model(&solver.pattern, grid, &T3E, Mode2d::Async);
            let ms = build_2d_model(&solver.pattern, grid, &T3E, Mode2d::Barrier);
            let ta = simulate(&ma.graph, &ma.schedule, &T3E).makespan;
            let ts = simulate(&ms.graph, &ms.schedule, &T3E).makespan;
            print!(" {:>6.1}%", 100.0 * (1.0 - ta / ts));
        }
        println!();
    }
    println!("{}", rule(10 + 8 * procs.len()));
    println!(
        "paper's shape to check: the asynchronous design wins everywhere and the\n\
         advantage grows with the processor count (paper: ~3–35 %, larger at P ≥ 8)."
    );
}
