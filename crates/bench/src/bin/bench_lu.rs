//! End-to-end LU factorization benchmark — seq / par1d / par2d GFLOP/s
//! and peak scratch bytes over the synthetic suite. Thin wrapper around
//! [`splu_bench::bench_lu`]; also reachable as `splu bench-lu`.
//!
//! Usage: `bench_lu [--out PATH] [--min-secs S]`

fn main() {
    let mut out = splu_bench::bench_lu::DEFAULT_OUT.to_string();
    let mut min_secs = 0.2f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--min-secs" => {
                min_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-secs needs a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = splu_bench::bench_lu::run(&out, min_secs) {
        eprintln!("bench_lu: {e}");
        std::process::exit(1);
    }
}
