//! End-to-end LU factorization benchmark — seq / par1d / par2d GFLOP/s,
//! peak scratch bytes, and the update-stage GEMM/scatter/wait breakdown
//! over the synthetic suite. Thin wrapper around [`splu_bench::bench_lu`];
//! also reachable as `splu bench-lu`.
//!
//! Usage: `bench_lu [--out PATH] [--min-secs S] [--baseline PATH]
//! [--lookahead W] [--suite small|large|large-smoke]`
//!
//! The run is gated against the previous record (`--baseline`, default:
//! the existing `--out` file): a GFLOP/s drop beyond `SPLU_BENCH_TOL_PCT`
//! percent (default 15) on any driver/matrix exits nonzero.

fn main() {
    let mut out = splu_bench::bench_lu::DEFAULT_OUT.to_string();
    let mut min_secs = 0.2f64;
    let mut baseline: Option<String> = None;
    let mut lookahead = splu_core::par2d::DEFAULT_LOOKAHEAD;
    let mut suite = splu_bench::bench_lu::SuiteSel::Small;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => {
                suite = splu_bench::bench_lu::SuiteSel::parse(
                    &args.next().expect("--suite needs a value"),
                )
                .unwrap_or_else(|e| panic!("{e}"))
            }
            "--out" => out = args.next().expect("--out needs a path"),
            "--min-secs" => {
                min_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-secs needs a number")
            }
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--lookahead" => {
                lookahead = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--lookahead needs a window size")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) =
        splu_bench::bench_lu::run_suite(&out, min_secs, baseline.as_deref(), lookahead, suite)
    {
        eprintln!("bench_lu: {e}");
        std::process::exit(1);
    }
}
