//! Table 3 — absolute performance (MFLOPS) of the 1D graph-scheduled
//! ("RAPID") code for P = 2…64, on the T3D and T3E machine models.
//!
//! MFLOPS use the paper's formula: baseline operation count divided by
//! the projected parallel time.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table3_rapid_1d
//! ```

use splu_bench::{analyze_default, baseline_on_permuted, build_default, rule};
use splu_machine::{T3D, T3E};
use splu_sched::{graph_schedule, simulate, TaskGraph};
use splu_sparse::suite;

fn main() {
    let procs = [2usize, 4, 8, 16, 32, 64];
    println!("Table 3: absolute MFLOPS of the 1D graph-scheduled code (DES projection)");
    println!("(large matrices scaled by {})\n", splu_bench::LARGE_SCALE);
    for machine in [&T3D, &T3E] {
        println!("== {} ==", machine.name);
        print!("{:<10}", "matrix");
        for p in procs {
            print!(" {:>8}", format!("P={p}"));
        }
        println!();
        println!("{}", rule(10 + 9 * procs.len()));
        for name in suite::SMALL
            .iter()
            .copied()
            .chain(["goodwin", "e40r0100", "b33_5600"])
        {
            let spec = suite::by_name(name).unwrap();
            let (a, _) = build_default(&spec);
            let solver = analyze_default(&a);
            let gp = baseline_on_permuted(&solver);
            let g = TaskGraph::build(&solver.pattern);
            print!("{name:<10}");
            for p in procs {
                let s = graph_schedule(&g, p, machine);
                let t = simulate(&g, &s, machine).makespan;
                print!(" {:>8.1}", gp.flops as f64 / t / 1e6);
            }
            println!();
        }
        println!();
    }
    println!(
        "paper's shape to check: MFLOPS grow with P but saturate for the small\n\
         matrices (limited parallelism near the end of elimination); T3E numbers\n\
         roughly 3× the T3D numbers (the paper observes ~3× on upgrade)."
    );
}
