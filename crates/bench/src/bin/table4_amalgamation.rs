//! Table 4 — parallel-time improvement from supernode amalgamation:
//! `1 − PT_amalgamated / PT_plain` for P = 1…32 (1D graph-scheduled code,
//! T3E model, r = 4 vs r = 0).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin table4_amalgamation
//! ```

use splu_bench::rule;
use splu_core::{FactorOptions, SparseLuSolver};
use splu_machine::T3E;
use splu_order::ColumnOrdering;
use splu_sched::{graph_schedule, simulate, TaskGraph};
use splu_sparse::suite;

fn main() {
    let procs = [1usize, 2, 4, 8, 16, 32];
    println!("Table 4: parallel-time improvement from supernode amalgamation");
    println!("(1 − PT(r=4)/PT(r=0), 1D graph-scheduled, T3E model)\n");
    print!("{:<10}", "matrix");
    for p in procs {
        print!(" {:>7}", format!("P={p}"));
    }
    println!();
    println!("{}", rule(10 + 8 * procs.len()));

    for name in suite::SMALL {
        let spec = suite::by_name(name).unwrap();
        let a = spec.build();
        let mk = |r: usize| {
            SparseLuSolver::analyze(
                &a,
                FactorOptions {
                    block_size: 25,
                    amalgamation: r,
                    ordering: ColumnOrdering::MinDegreeAtA,
                    ..FactorOptions::default()
                },
            )
        };
        let plain = TaskGraph::build(&mk(0).pattern);
        let amal = TaskGraph::build(&mk(4).pattern);
        print!("{name:<10}");
        for p in procs {
            let t_plain = simulate(&plain, &graph_schedule(&plain, p, &T3E), &T3E).makespan;
            let t_amal = simulate(&amal, &graph_schedule(&amal, p, &T3E), &T3E).makespan;
            print!(" {:>6.1}%", 100.0 * (1.0 - t_amal / t_plain));
        }
        println!();
    }
    println!("{}", rule(10 + 8 * procs.len()));
    println!(
        "paper's shape to check: amalgamation helps at every processor count\n\
         (the paper reports 10–60 % improvements, shrinking somewhat at P = 32\n\
         as granularity trades against parallelism)."
    );
}
