//! Fig. 17 — performance improvement of the 1D graph-scheduled code over
//! the 2D asynchronous code: `1 − PT_RAPID / PT_2D` (T3E model), for the
//! matrices solvable by both codes.
//!
//! ```sh
//! cargo run --release -p splu-bench --bin fig17_1d_vs_2d
//! ```

use splu_bench::{analyze_default, build_default, rule};
use splu_machine::{Grid, T3E};
use splu_sched::{build_2d_model, graph_schedule, simulate, Mode2d, TaskGraph};
use splu_sparse::suite;

fn main() {
    let procs = [4usize, 8, 16, 32];
    println!("Fig. 17: 1 − PT_RAPID/PT_2D (positive = 1D graph-scheduled wins), T3E model\n");
    print!("{:<10}", "matrix");
    for p in procs {
        print!(" {:>7}", format!("P={p}"));
    }
    println!();
    println!("{}", rule(10 + 8 * procs.len()));

    for name in suite::SMALL.iter().copied().chain(["goodwin"]) {
        let spec = suite::by_name(name).unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        let g1 = TaskGraph::build(&solver.pattern);
        print!("{name:<10}");
        for p in procs {
            let t1 = simulate(&g1, &graph_schedule(&g1, p, &T3E), &T3E).makespan;
            let m2 = build_2d_model(&solver.pattern, Grid::for_procs(p), &T3E, Mode2d::Async);
            let t2 = simulate(&m2.graph, &m2.schedule, &T3E).makespan;
            print!(" {:>6.1}%", 100.0 * (1.0 - t1 / t2));
        }
        println!();
    }
    println!("{}", rule(10 + 8 * procs.len()));
    println!(
        "paper's shape to check: the 1D RAPID code wins when memory permits\n\
         (graph-scheduled ordering beats the simple 2D ordering), but the gap\n\
         narrows where 2D's better load balance compensates (cf. Fig. 18)."
    );
}
