//! Figs. 2, 4, 9 and 11 — the paper's worked small examples.
//!
//! * Fig. 2: the step-by-step static symbolic factorization of a 5×5
//!   sparse matrix (candidate rows and union structures per step);
//! * Fig. 4: L/U supernode partitioning of a 7×7 example, showing the
//!   2D block pattern and the dense subcolumns of Theorem 1;
//! * Fig. 9: the task dependence graph derived from that partitioning;
//! * Fig. 11: Gantt charts of the compute-ahead schedule versus the graph
//!   schedule on two processors (task weight 2, edge weight 1).
//!
//! ```sh
//! cargo run --release -p splu-bench --bin fig_examples
//! ```

use splu_machine::MachineModel;
use splu_sched::gantt::render_sequences;
use splu_sched::{ca_schedule, graph_schedule, simulate, TaskGraph};
use splu_sparse::{CooMatrix, CscMatrix};
use splu_symbolic::{
    amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
};
use std::sync::Arc;

fn from_bool(rows: &[&[u8]]) -> CscMatrix {
    let n = rows.len();
    let mut c = CooMatrix::new(n, n);
    for (i, r) in rows.iter().enumerate() {
        for (j, &b) in r.iter().enumerate() {
            if b != 0 {
                c.push(i, j, 1.0 + (i * n + j) as f64 * 0.01);
            }
        }
    }
    c.to_csc()
}

fn show_pattern(title: &str, n: usize, contains: impl Fn(usize, usize) -> (bool, bool)) {
    println!("{title}");
    for i in 0..n {
        print!("  ");
        for j in 0..n {
            let (orig, filled) = contains(i, j);
            print!(
                "{} ",
                if orig {
                    'x'
                } else if filled {
                    '+'
                } else {
                    '.'
                }
            );
        }
        println!();
    }
}

fn main() {
    // ---- Fig. 2: static symbolic factorization of a 5×5 example ----
    println!("== Fig. 2: static symbolic factorization, 5×5 example ==\n");
    let a5 = from_bool(&[
        &[1, 0, 1, 0, 0],
        &[1, 1, 0, 0, 0],
        &[0, 0, 1, 1, 0],
        &[0, 1, 0, 1, 1],
        &[1, 0, 0, 0, 1],
    ]);
    let s5 = static_symbolic_factorization(&a5);
    for k in 0..5 {
        println!(
            "step {}: candidates P_{} = {:?}, union U_{} = {:?}",
            k + 1,
            k + 1,
            s5.lcols[k].iter().map(|r| r + 1).collect::<Vec<_>>(),
            k + 1,
            s5.urows[k].iter().map(|c| c + 1).collect::<Vec<_>>()
        );
    }
    show_pattern(
        "\npredicted pattern (x = original, + = fill):",
        5,
        |i, j| (a5.is_stored(i, j), s5.contains(i, j)),
    );

    // ---- Fig. 4: L/U supernode partitioning of a 7×7 example ----
    println!("\n== Fig. 4: L/U supernode partitioning, 7×7 example ==\n");
    let a7 = from_bool(&[
        &[1, 1, 0, 0, 1, 0, 0],
        &[1, 1, 0, 1, 0, 0, 0],
        &[0, 0, 1, 0, 1, 0, 1],
        &[0, 1, 0, 1, 0, 1, 0],
        &[1, 0, 1, 0, 1, 0, 0],
        &[0, 0, 0, 1, 0, 1, 1],
        &[0, 0, 1, 0, 0, 1, 1],
    ]);
    let s7 = static_symbolic_factorization(&a7);
    let part = amalgamate(&s7, &partition_supernodes(&s7, 25), 0, 25);
    println!("supernode partition: {:?} (block boundaries)", part.starts);
    let bp = Arc::new(BlockPattern::build(&s7, &part));
    show_pattern("static pattern with blocks:", 7, |i, j| {
        (a7.is_stored(i, j), s7.contains(i, j))
    });
    for k in 0..bp.nblocks() {
        for u in &bp.u_blocks[k] {
            println!(
                "U block ({}, {}): dense subcolumns at {:?} [{:?}]",
                k + 1,
                u.j + 1,
                u.cols.iter().map(|c| c + 1).collect::<Vec<_>>(),
                u.kind
            );
        }
    }

    // ---- Fig. 9: the task dependence graph ----
    println!("\n== Fig. 9: task dependence graph of the Fig. 4 example ==\n");
    let g = TaskGraph::build(&bp);
    for (t, kind) in g.tasks.iter().enumerate() {
        let succs: Vec<String> = g.succs[t]
            .iter()
            .map(|&s| format!("{}", g.tasks[s as usize]))
            .collect();
        println!("{:<8} → {}", format!("{kind}"), succs.join(", "));
    }

    // ---- Fig. 11: CA vs graph schedule Gantt charts ----
    println!("\n== Fig. 11: schedules on 2 processors (task weight 2, edge weight 1) ==\n");
    let unit = MachineModel {
        name: "fig11-unit",
        w1: 1.0,
        w2: 1.0,
        w3: 1.0,
        alpha: 1.0,
        beta: 0.0,
    };
    let mut gu = g.clone();
    for f in gu.flops.iter_mut() {
        *f = (2, 0); // weight-2 tasks
    }
    for w in gu.msg_words.iter_mut() {
        *w = 0; // edge weight = alpha = 1
    }
    let rca = simulate(&gu, &ca_schedule(&gu, 2), &unit);
    println!("compute-ahead schedule (PT = {}):", rca.makespan);
    println!("{}", render_sequences(&gu, &rca));
    let rgs = simulate(&gu, &graph_schedule(&gu, 2, &unit), &unit);
    println!("graph schedule (PT = {}):", rgs.makespan);
    println!("{}", render_sequences(&gu, &rgs));
    println!(
        "graph scheduling {} the compute-ahead schedule ({} vs {}).",
        if rgs.makespan <= rca.makespan {
            "matches or beats"
        } else {
            "loses to"
        },
        rgs.makespan,
        rca.makespan
    );
}
