//! `splu-bench` — experiment harnesses reproducing the paper's tables and
//! figures.
//!
//! Each table/figure of the evaluation (§6) has a binary that regenerates
//! it (`cargo run --release -p splu-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|-----------|
//! | `table1_matrices` | Table 1 — matrix statistics & overestimation ratios |
//! | `table2_sequential` | Table 2 — sequential S\* vs baseline (+ T3D/T3E projection) |
//! | `table3_rapid_1d` | Table 3 — 1D graph-scheduled MFLOPS, P = 2…64 |
//! | `table4_amalgamation` | Table 4 — amalgamation improvement, P = 1…32 |
//! | `table5_2d_t3d` | Table 5 — 2D code on large matrices (T3D model) |
//! | `table6_2d_t3e` | Table 6 — 2D async on T3E, P = 8…128 |
//! | `table7_async_vs_sync` | Table 7 — 2D async vs synchronous improvement |
//! | `fig16_sched_compare` | Fig. 16 — CA vs graph scheduling |
//! | `fig17_1d_vs_2d` | Fig. 17 — 1D RAPID vs 2D parallel time |
//! | `fig18_load_balance` | Fig. 18 — load balance factors 1D vs 2D |
//! | `fig_examples` | Figs. 2/4/9/11 — worked small examples |
//! | `ablation_block_size` | block-size sweep (paper fixes 25) |
//! | `ablation_amalgamation` | amalgamation-factor sweep (paper: r in 4..6) |
//! | `ablation_aspect_ratio` | p_r : p_c sweep (paper: p_c/p_r = 2) |
//! | `ablation_overlap_buffers` | Theorem 2 overlap degrees + §5.2 buffers |
//! | `ablation_memory` | §5.2 per-processor storage & buffering, 1D vs 2D |
//!
//! Parallel *times* come from the discrete-event T3D/T3E machine model
//! (`DESIGN.md` §3 — the build host exposes a single core, so wall-clock
//! thread scaling is meaningless here; the thread backend is used for
//! correctness and protocol/buffer instrumentation instead). MFLOPS
//! follow the paper's formula: operation count of the SuperLU-like
//! baseline divided by the S\* parallel time — overestimated flops are
//! never credited.

use splu_core::{FactorOptions, SparseLuSolver};
use splu_sparse::suite::{self, MatrixSpec};
use splu_sparse::CscMatrix;

pub mod bench_lu;
pub mod stopwatch;

/// Default shrink factor for the LARGE suite matrices so every harness
/// finishes in minutes on a laptop-class host (printed with each table).
pub const LARGE_SCALE: f64 = 0.25;

/// Build a suite matrix at the harness's default scale.
pub fn build_default(spec: &MatrixSpec) -> (CscMatrix, f64) {
    let scale = if suite::LARGE.contains(&spec.name) {
        LARGE_SCALE
    } else {
        1.0
    };
    (spec.build_scaled(scale), scale)
}

/// Analyze with the paper's defaults (block 25, r = 4, min-degree AᵀA).
pub fn analyze_default(a: &CscMatrix) -> SparseLuSolver {
    SparseLuSolver::analyze(a, FactorOptions::default())
}

/// Baseline op count & factor nnz: the Gilbert–Peierls factorization of
/// the *same preprocessed matrix* (same row/column permutations the S\*
/// pipeline factors) — the fair denominator for every ratio in the paper.
pub fn baseline_on_permuted(solver: &SparseLuSolver) -> splu_superlu::GpLu {
    splu_superlu::gp_factor(&solver.permuted, 1.0).expect("baseline factorization failed")
}

/// Pretty horizontal rule for table output.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Format seconds in engineering style.
pub fn secs(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.2}s")
    } else if t >= 1e-3 {
        format!("{:.1}ms", t * 1e3)
    } else {
        format!("{:.0}µs", t * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_scales_large_only() {
        let small = suite::by_name("jpwh991").unwrap();
        let (a, s) = build_default(&small);
        assert_eq!(s, 1.0);
        assert_eq!(a.nrows(), 991);
        let large = suite::by_name("vavasis3").unwrap();
        let (a, s) = build_default(&large);
        assert_eq!(s, LARGE_SCALE);
        assert!(a.nrows() < 41092 / 2);
    }

    #[test]
    fn baseline_runs_on_permuted_matrix() {
        let spec = suite::by_name("jpwh991").unwrap();
        let (a, _) = build_default(&spec);
        let solver = analyze_default(&a);
        let gp = baseline_on_permuted(&solver);
        assert!(gp.flops > 0);
        assert!(gp.factor_nnz() > a.nnz());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0021), "2.1ms");
        assert_eq!(secs(3.2e-5), "32µs");
        assert_eq!(rule(3), "---");
    }
}
