//! A minimal wall-clock bench harness (std-only; the build environment
//! cannot fetch criterion). Adaptive iteration count, median-of-samples
//! reporting, optional throughput in Mflop/s.
//!
//! Not a statistics engine: good enough to rank kernels (the §6 `w3 <
//! w2` check) and to spot order-of-magnitude regressions, which is all
//! the paper-reproduction harnesses need.

use std::hint::black_box;
use std::time::Instant;

/// Samples collected for one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median seconds per iteration.
    pub median_secs: f64,
    /// Minimum seconds per iteration across samples.
    pub min_secs: f64,
    /// Iterations per sample that were actually timed.
    pub iters: u64,
}

impl Measurement {
    /// Mflop/s at `flops` floating-point operations per iteration.
    pub fn mflops(&self, flops: u64) -> f64 {
        flops as f64 / self.median_secs / 1e6
    }
}

/// Time `f`, returning per-iteration statistics. Runs a warmup, sizes
/// the iteration count so one sample takes ≳10 ms, then takes 9 samples.
pub fn time<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    // warmup + calibration: find iters such that a sample is >= ~10 ms
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= 0.01 || iters >= 1 << 20 {
            break;
        }
        // aim past 10 ms with headroom
        iters = if dt <= 0.0 {
            iters * 16
        } else {
            (iters as f64 * (0.015 / dt).clamp(2.0, 16.0)) as u64
        };
    }
    let mut samples = Vec::with_capacity(9);
    for _ in 0..9 {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measurement {
        name: name.to_string(),
        median_secs: samples[samples.len() / 2],
        min_secs: samples[0],
        iters,
    }
}

/// Time `f` and print one report line; returns the measurement. With
/// `flops > 0` the line includes an Mflop/s rate.
pub fn report<R>(name: &str, flops: u64, f: impl FnMut() -> R) -> Measurement {
    let m = time(name, f);
    if flops > 0 {
        println!(
            "{:<24} {:>12} {:>10.1} Mflop/s   ({} iters/sample)",
            m.name,
            crate::secs(m.median_secs),
            m.mflops(flops),
            m.iters
        );
    } else {
        println!(
            "{:<24} {:>12}   ({} iters/sample)",
            m.name,
            crate::secs(m.median_secs),
            m.iters
        );
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_ordered() {
        let m = time("noop", || 1u64 + black_box(1));
        assert!(m.median_secs > 0.0);
        assert!(m.min_secs <= m.median_secs);
        assert!(m.iters >= 1);
    }

    #[test]
    fn mflops_scales_with_flop_count() {
        let m = Measurement {
            name: "x".into(),
            median_secs: 1e-3,
            min_secs: 1e-3,
            iters: 10,
        };
        assert!((m.mflops(1_000_000) - 1000.0).abs() < 1e-9);
    }
}
