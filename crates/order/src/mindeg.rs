//! Minimum-degree fill-reducing ordering on a symmetric pattern.
//!
//! The paper orders columns with "the multiple minimum degree ordering for
//! `AᵀA`" (§3.1). This module implements a quotient-graph minimum-degree
//! ordering in the George–Liu / MMD / AMD family with the standard
//! structural optimizations:
//!
//! * **quotient graph** — eliminated variables become *elements* (cliques
//!   represented by their variable lists) instead of explicit fill edges,
//! * **element absorption** — elements adjacent to the pivot are absorbed
//!   into the newly created element, keeping element lists short,
//! * **supervariable merging** — variables with identical quotient-graph
//!   adjacency (detected by hashing within each new element, then verified
//!   exactly) are merged and eliminated together (mass elimination),
//! * **approximate external degree** — the AMD-style upper bound
//!   `d(u) ≤ |adj(u)| + Σ_e |L_e \ u|`, maintained incrementally; cheap
//!   and empirically within a few percent of exact-degree MMD fill.
//!
//! The input is any symmetric [`Pattern`] (for the LU pipeline, the pattern
//! of `AᵀA` from [`splu_sparse::pattern::ata_pattern`]). The output
//! permutation maps old indices to elimination positions.

use splu_sparse::pattern::Pattern;
use splu_sparse::Perm;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NONE: u32 = u32::MAX;

/// Statistics from a minimum-degree run.
#[derive(Debug, Clone, Default)]
pub struct MinDegreeStats {
    /// Number of supervariable merges performed.
    pub merges: usize,
    /// Number of elements absorbed.
    pub absorbed: usize,
    /// Number of pivot selections (elimination steps over supervariables).
    pub steps: usize,
}

struct MdState {
    /// Variable-variable adjacency (pruned as elements cover pairs).
    adj: Vec<Vec<u32>>,
    /// Elements adjacent to each variable.
    elems: Vec<Vec<u32>>,
    /// Variable list of each element (indexed by the pivot variable that
    /// created it); empty if absorbed or never created.
    elem_vars: Vec<Vec<u32>>,
    /// Element alive flags.
    elem_alive: Vec<bool>,
    /// Variable status: alive, merged into another, or eliminated.
    merged_into: Vec<u32>,
    eliminated: Vec<bool>,
    /// Supervariable weights (number of original variables represented).
    weight: Vec<u32>,
    /// Approximate external degree (in original-variable units).
    degree: Vec<u32>,
    /// Scratch marker.
    mark: Vec<u32>,
    stamp: u32,
}

impl MdState {
    fn find(&self, mut v: u32) -> u32 {
        while self.merged_into[v as usize] != NONE {
            v = self.merged_into[v as usize];
        }
        v
    }

    fn next_stamp(&mut self) -> u32 {
        self.stamp += 1;
        self.stamp
    }
}

/// Compute a minimum-degree ordering of a symmetric pattern.
///
/// Returns the permutation (old index → elimination position) and run
/// statistics. Diagonal entries in the pattern are ignored; the pattern is
/// assumed symmetric (use [`splu_sparse::pattern::ata_pattern`] /
/// [`splu_sparse::pattern::at_plus_a_pattern`] to symmetrize).
pub fn min_degree(p: &Pattern) -> (Perm, MinDegreeStats) {
    assert_eq!(p.nrows(), p.ncols(), "min_degree needs a square pattern");
    let n = p.ncols();
    let mut stats = MinDegreeStats::default();
    if n == 0 {
        return (Perm::identity(0), stats);
    }

    let mut st = MdState {
        adj: (0..n)
            .map(|j| {
                p.col(j)
                    .iter()
                    .copied()
                    .filter(|&i| i as usize != j)
                    .collect()
            })
            .collect(),
        elems: vec![Vec::new(); n],
        elem_vars: vec![Vec::new(); n],
        elem_alive: vec![false; n],
        merged_into: vec![NONE; n],
        eliminated: vec![false; n],
        weight: vec![1; n],
        degree: vec![0; n],
        mark: vec![0; n],
        stamp: 0,
    };
    for v in 0..n {
        st.degree[v] = st.adj[v].len() as u32;
    }

    // Lazy min-heap of (degree, variable); stale entries are skipped.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = (0..n as u32)
        .map(|v| Reverse((st.degree[v as usize], v)))
        .collect();

    let mut order: Vec<u32> = Vec::with_capacity(n); // supervariable pivots
    let mut position = vec![NONE; n];
    let mut next_pos = 0usize;

    while next_pos < n {
        // Pop the (live) minimum-degree supervariable.
        let v = loop {
            let Reverse((d, v)) = heap.pop().expect("heap exhausted early");
            let vu = v as usize;
            if st.eliminated[vu] || st.merged_into[vu] != NONE {
                continue;
            }
            if d != st.degree[vu] {
                // stale entry; reinsert with the fresh key
                heap.push(Reverse((st.degree[vu], v)));
                continue;
            }
            break v;
        };
        let vu = v as usize;
        stats.steps += 1;

        // ---- Form the new element L_v = Reach(v). ----
        let stamp = st.next_stamp();
        st.mark[vu] = stamp;
        let mut lv: Vec<u32> = Vec::new();
        // variable neighbors
        for idx in 0..st.adj[vu].len() {
            let w = st.find(st.adj[vu][idx]);
            let wu = w as usize;
            if !st.eliminated[wu] && st.mark[wu] != stamp {
                st.mark[wu] = stamp;
                lv.push(w);
            }
        }
        // variables of adjacent elements
        for eidx in 0..st.elems[vu].len() {
            let e = st.elems[vu][eidx] as usize;
            if !st.elem_alive[e] {
                continue;
            }
            for idx in 0..st.elem_vars[e].len() {
                let w = st.find(st.elem_vars[e][idx]);
                let wu = w as usize;
                if !st.eliminated[wu] && st.mark[wu] != stamp {
                    st.mark[wu] = stamp;
                    lv.push(w);
                }
            }
            // absorb e into the new element
            st.elem_alive[e] = false;
            st.elem_vars[e] = Vec::new();
            stats.absorbed += 1;
        }
        st.elems[vu].clear();

        // ---- Eliminate v (and everything merged into it). ----
        st.eliminated[vu] = true;
        order.push(v);
        position[vu] = next_pos as u32;
        next_pos += st.weight[vu] as usize;

        if lv.is_empty() {
            continue;
        }

        // Create the element named v.
        st.elem_vars[vu] = lv.clone();
        st.elem_alive[vu] = true;

        // ---- Update each u in L_v. ----
        // `lv_mark` lets the pruning pass test membership in L_v ∪ {v}.
        for &u in &lv {
            let uu = u as usize;
            // prune var-adjacency: drop v, dead vars, anything inside L_v
            // (covered by the new element), and duplicates via find().
            let prune_stamp_members = stamp; // marks identify L_v ∪ {v}
            let mut kept: Vec<u32> = Vec::with_capacity(st.adj[uu].len());
            let ks = st.next_stamp();
            for idx in 0..st.adj[uu].len() {
                let w = st.find(st.adj[uu][idx]);
                let wu = w as usize;
                if w == u || st.eliminated[wu] {
                    continue;
                }
                if st.mark[wu] == prune_stamp_members {
                    continue; // inside L_v: covered by element v
                }
                if st.mark[wu] == ks {
                    continue; // duplicate after merging
                }
                st.mark[wu] = ks;
                kept.push(w);
            }
            // note: ks invalidated the lv marks for pruned nodes; restore
            // below by re-marking L_v for the next u.
            st.adj[uu] = kept;
            // element list: drop dead, add v
            st.elems[uu].retain(|&e| st.elem_alive[e as usize]);
            if !st.elems[uu].contains(&v) {
                st.elems[uu].push(v);
            }
            // re-mark L_v ∪ {v} for the next iteration's pruning test
            st.mark[vu] = stamp;
            for &w in &lv {
                st.mark[w as usize] = stamp;
            }
        }

        // ---- Approximate degrees + supervariable detection. ----
        let lv_weight: u32 = lv.iter().map(|&w| st.weight[w as usize]).sum();
        // hash of quotient adjacency for indistinguishability detection
        let mut buckets: std::collections::HashMap<u64, Vec<u32>> =
            std::collections::HashMap::new();
        for &u in &lv {
            let uu = u as usize;
            // degree bound: |adj(u)| + Σ_e (|L_e| - weight(u) overlap);
            // cheap form: var part + element-size sum (counting weights).
            let var_part: u32 = st.adj[uu]
                .iter()
                .map(|&w| st.weight[st.find(w) as usize])
                .sum();
            let mut elem_part: u32 = 0;
            let es = st.next_stamp();
            for &e in &st.elems[uu] {
                let eu = e as usize;
                if st.elem_alive[eu] && st.mark[eu] != es {
                    st.mark[eu] = es;
                    if eu == vu {
                        elem_part += lv_weight - st.weight[uu];
                    } else {
                        elem_part += st.elem_vars[eu]
                            .iter()
                            .map(|&w| {
                                let f = st.find(w);
                                if f == u || st.eliminated[f as usize] {
                                    0
                                } else {
                                    st.weight[f as usize]
                                }
                            })
                            .sum::<u32>();
                    }
                }
            }
            st.degree[uu] = var_part + elem_part;
            heap.push(Reverse((st.degree[uu], u)));

            // hash adjacency for supervariable detection
            let mut h: u64 = 0xcbf29ce484222325;
            let mix = |x: u64, h: &mut u64| {
                *h = (*h ^ x).wrapping_mul(0x100000001b3);
            };
            let mut elem_ids: Vec<u32> = st.elems[uu]
                .iter()
                .copied()
                .filter(|&e| st.elem_alive[e as usize])
                .collect();
            elem_ids.sort_unstable();
            let mut var_ids: Vec<u32> = st.adj[uu].iter().map(|&w| st.find(w)).collect();
            var_ids.sort_unstable();
            var_ids.dedup();
            for &e in &elem_ids {
                mix(e as u64 + 1, &mut h);
            }
            mix(u64::MAX, &mut h);
            for &w in &var_ids {
                mix(w as u64 + 1, &mut h);
            }
            buckets.entry(h).or_default().push(u);
        }

        // merge indistinguishable variables (verified exactly)
        for (_, group) in buckets {
            if group.len() < 2 {
                continue;
            }
            let mut reps: Vec<u32> = Vec::new();
            'cand: for &u in &group {
                if st.merged_into[u as usize] != NONE {
                    continue;
                }
                for &r in &reps {
                    if quotient_adj_equal(&st, r, u) {
                        // merge u into r
                        let (ru, uu) = (r as usize, u as usize);
                        st.weight[ru] += st.weight[uu];
                        st.merged_into[uu] = r;
                        st.adj[uu] = Vec::new();
                        st.elems[uu] = Vec::new();
                        st.degree[ru] = st.degree[ru].saturating_sub(st.weight[uu]);
                        heap.push(Reverse((st.degree[ru], r)));
                        stats.merges += 1;
                        continue 'cand;
                    }
                }
                reps.push(u);
            }
        }
    }

    // Expand supervariable order into per-variable positions: a merged
    // variable is placed right after its representative.
    let mut new_of_old = vec![usize::MAX; n];
    // collect members of each representative
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n as u32 {
        let r = {
            // find ultimate representative
            let mut x = u;
            while st.merged_into[x as usize] != NONE {
                x = st.merged_into[x as usize];
            }
            x
        };
        if r != u {
            members[r as usize].push(u);
        }
    }
    for &v in &order {
        let vu = v as usize;
        let mut pos = position[vu] as usize;
        new_of_old[vu] = pos;
        pos += 1;
        for &m in &members[vu] {
            new_of_old[m as usize] = pos;
            pos += 1;
        }
    }
    (Perm::from_new_of_old(new_of_old), stats)
}

/// Exact comparison of two variables' quotient-graph adjacency
/// (element lists and pruned variable lists), used to verify hash matches.
fn quotient_adj_equal(st: &MdState, a: u32, b: u32) -> bool {
    let (au, bu) = (a as usize, b as usize);
    let norm_elems = |u: usize| {
        let mut v: Vec<u32> = st.elems[u]
            .iter()
            .copied()
            .filter(|&e| st.elem_alive[e as usize])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    if norm_elems(au) != norm_elems(bu) {
        return false;
    }
    let norm_vars = |u: usize, other: u32| {
        let mut v: Vec<u32> = st.adj[u]
            .iter()
            .map(|&w| st.find(w))
            .filter(|&w| w != u as u32 && w != other && !st.eliminated[w as usize])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    norm_vars(au, b) == norm_vars(bu, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_sparse::pattern::{at_plus_a_pattern, cholesky_fill_count, Pattern};
    use splu_sparse::CooMatrix;

    fn sym_pattern(edges: &[(usize, usize)], n: usize) -> Pattern {
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
        }
        for &(i, j) in edges {
            c.push(i, j, 1.0);
            c.push(j, i, 1.0);
        }
        Pattern::from_csc(&c.to_csc())
    }

    fn apply_and_count(p: &Pattern, perm: &Perm) -> usize {
        // permute the pattern symmetrically and count Cholesky fill
        let n = p.ncols();
        let mut c = CooMatrix::new(n, n);
        for j in 0..n {
            for &i in p.col(j) {
                c.push(perm.new_of_old(i as usize), perm.new_of_old(j), 1.0);
            }
        }
        let pp = Pattern::from_csc(&c.to_csc());
        cholesky_fill_count(&pp).0
    }

    #[test]
    fn empty_and_singleton() {
        let (p0, _) = min_degree(&sym_pattern(&[], 0));
        assert_eq!(p0.len(), 0);
        let (p1, _) = min_degree(&sym_pattern(&[], 1));
        assert_eq!(p1.len(), 1);
    }

    #[test]
    fn output_is_a_permutation() {
        let a = gen::random_sparse(150, 4, 0.5, ValueModel::default());
        let p = at_plus_a_pattern(&a);
        let (perm, _) = min_degree(&p);
        let mut seen = [false; 150];
        for old in 0..150 {
            let newp = perm.new_of_old(old);
            assert!(!seen[newp]);
            seen[newp] = true;
        }
    }

    #[test]
    fn star_graph_eliminates_leaves_first() {
        // Star: hub 0 connected to all. MD must not pick the hub first.
        let n = 12;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0usize, i)).collect();
        let p = sym_pattern(&edges, n);
        let (perm, _) = min_degree(&p);
        // hub must be eliminated last or second-to-last (when two nodes
        // remain, both have degree 1 and the tie may go either way)
        assert!(perm.new_of_old(0) >= n - 2);
        // star ordered leaves-first has zero fill
        assert_eq!(apply_and_count(&p, &perm), 2 * n - 1);
    }

    #[test]
    fn path_graph_no_fill() {
        let n = 30;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let p = sym_pattern(&edges, n);
        let (perm, _) = min_degree(&p);
        // MD on a path always finds a fill-free ordering: nnz(L) = 2n - 1.
        assert_eq!(apply_and_count(&p, &perm), 2 * n - 1);
    }

    #[test]
    fn grid_fill_beats_natural_substantially() {
        let a = gen::grid2d(14, 14, 0.0, ValueModel::default());
        let p = at_plus_a_pattern(&a);
        let natural = cholesky_fill_count(&p).0;
        let (perm, stats) = min_degree(&p);
        let md = apply_and_count(&p, &perm);
        assert!(
            (md as f64) < 0.8 * natural as f64,
            "MD fill {md} vs natural {natural}"
        );
        assert!(stats.steps <= 14 * 14);
    }

    #[test]
    fn dense_block_mass_eliminates() {
        // A clique: all variables are indistinguishable; supervariable
        // merging should collapse the whole thing into few steps.
        let n = 20;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        let p = sym_pattern(&edges, n);
        let (perm, stats) = min_degree(&p);
        assert!(
            stats.merges > 0,
            "clique should trigger supervariable merges"
        );
        assert!(stats.steps < n, "mass elimination should shorten the run");
        // any ordering of a clique has full fill; just verify it's a perm
        let _ = apply_and_count(&p, &perm);
    }

    #[test]
    fn deterministic() {
        let a = gen::grid2d(9, 11, 0.0, ValueModel::default());
        let p = at_plus_a_pattern(&a);
        let (p1, _) = min_degree(&p);
        let (p2, _) = min_degree(&p);
        for i in 0..p.ncols() {
            assert_eq!(p1.new_of_old(i), p2.new_of_old(i));
        }
    }
}
