//! Maximum transversal (Duff's algorithm, MC21-style).
//!
//! Finds a maximum matching between columns and rows of a sparse pattern so
//! that the matched entries can be permuted onto the diagonal. The paper
//! (§3.1) permutes rows "using a transversal obtained from Duff's algorithm
//! to make A have a zero-free diagonal" — a hard precondition of the static
//! symbolic factorization (without it the overestimate becomes "too
//! generous", and the theory of §3 assumes `a_kk ≠ 0`).
//!
//! The implementation is the classic augmenting-path search with a
//! cheap-assignment fast path, O(n · nnz) worst case and near-linear on the
//! matrices in this workspace.

use splu_sparse::{CscMatrix, Perm};

/// Result of the maximum-transversal search.
#[derive(Debug, Clone)]
pub struct Transversal {
    /// `row_of_col[j]` = row matched to column `j`, or `u32::MAX` if the
    /// column is unmatched (structurally singular matrix).
    pub row_of_col: Vec<u32>,
    /// Number of matched columns.
    pub size: usize,
}

/// Compute a maximum transversal of the pattern of `a`.
pub fn max_transversal(a: &CscMatrix) -> Transversal {
    const NONE: u32 = u32::MAX;
    let n = a.ncols();
    let nrows = a.nrows();
    let mut row_of_col = vec![NONE; n];
    let mut col_of_row = vec![NONE; nrows];

    // Phase 1: cheap assignment — greedily match each column to the first
    // free row in its list.
    for j in 0..n {
        for &i in a.col(j).0 {
            if col_of_row[i as usize] == NONE {
                col_of_row[i as usize] = j as u32;
                row_of_col[j] = i;
                break;
            }
        }
    }

    // Phase 2: augmenting path (iterative DFS) for unmatched columns.
    // visited[row] = current column stamp to avoid revisiting.
    let mut visited = vec![NONE; nrows];
    // DFS stack of (column, position within its row list).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    // path of rows chosen per stack level.
    let mut chosen: Vec<u32> = Vec::new();

    for j0 in 0..n {
        if row_of_col[j0] != NONE {
            continue;
        }
        stack.clear();
        chosen.clear();
        stack.push((j0 as u32, 0));
        let stamp = j0 as u32;
        let mut augmented = false;

        'dfs: while !stack.is_empty() {
            // Advance the top frame by one candidate row, recording the
            // action to take once the mutable borrow of `stack` ends.
            enum Step {
                Backtrack,
                Augment(u32),
                Descend(u32, u32),
            }
            let step = {
                let top = stack.last_mut().expect("nonempty");
                let j = top.0;
                let rows = a.col(j as usize).0;
                let mut step = Step::Backtrack;
                while top.1 < rows.len() {
                    let i = rows[top.1];
                    top.1 += 1;
                    if visited[i as usize] == stamp {
                        continue;
                    }
                    visited[i as usize] = stamp;
                    let owner = col_of_row[i as usize];
                    step = if owner == NONE {
                        Step::Augment(i)
                    } else {
                        Step::Descend(i, owner)
                    };
                    break;
                }
                step
            };
            match step {
                Step::Backtrack => {
                    stack.pop();
                    chosen.pop();
                }
                Step::Augment(i) => {
                    // Found a free row: unwind the path, flipping matches.
                    chosen.push(i);
                    for level in (0..stack.len()).rev() {
                        let (cj, _) = stack[level];
                        let ri = chosen[level];
                        row_of_col[cj as usize] = ri;
                        col_of_row[ri as usize] = cj;
                    }
                    augmented = true;
                    break 'dfs;
                }
                Step::Descend(i, owner) => {
                    // Row taken: try to re-match its owner deeper.
                    chosen.push(i);
                    stack.push((owner, 0));
                }
            }
        }
        let _ = augmented;
    }

    let size = row_of_col.iter().filter(|&&r| r != NONE).count();
    Transversal { row_of_col, size }
}

/// Produce a row permutation that moves the transversal onto the diagonal:
/// row `row_of_col[j]` is sent to position `j`. Returns `None` if the
/// matrix is structurally singular (no full transversal exists).
pub fn zero_free_row_perm(a: &CscMatrix) -> Option<Perm> {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "transversal permutation needs square A"
    );
    let t = max_transversal(a);
    if t.size != a.ncols() {
        return None;
    }
    // new_of_old: old row r -> the column it is matched to.
    let mut new_of_old = vec![usize::MAX; a.nrows()];
    for (j, &r) in t.row_of_col.iter().enumerate() {
        new_of_old[r as usize] = j;
    }
    Some(Perm::from_new_of_old(new_of_old))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_sparse::CooMatrix;

    #[test]
    fn identity_matches_trivially() {
        let a = CscMatrix::identity(5);
        let t = max_transversal(&a);
        assert_eq!(t.size, 5);
        for (j, &r) in t.row_of_col.iter().enumerate() {
            assert_eq!(r as usize, j);
        }
    }

    #[test]
    fn shifted_matrix_needs_full_permutation() {
        let a = gen::shift_rows(&gen::grid2d(6, 6, 0.0, ValueModel::default()), 7);
        assert!(!a.has_zero_free_diagonal());
        let p = zero_free_row_perm(&a).unwrap();
        assert!(a.permute_rows(&p).has_zero_free_diagonal());
    }

    #[test]
    fn augmenting_path_case() {
        // Needs augmentation: col0 -> {0}, col1 -> {0,1}: cheap pass gives
        // col0=0, col1=1 directly; make it harder:
        // col0 -> {1}, col1 -> {0, 1}, col2 -> {1, 2}
        let mut c = CooMatrix::new(3, 3);
        c.push(1, 0, 1.0);
        c.push(0, 1, 1.0);
        c.push(1, 1, 1.0);
        c.push(1, 2, 1.0);
        c.push(2, 2, 1.0);
        let a = c.to_csc();
        let t = max_transversal(&a);
        assert_eq!(t.size, 3);
        let p = zero_free_row_perm(&a).unwrap();
        assert!(a.permute_rows(&p).has_zero_free_diagonal());
    }

    #[test]
    fn structurally_singular_detected() {
        // column 2 empty
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        let a = c.to_csc();
        assert_eq!(max_transversal(&a).size, 2);
        assert!(zero_free_row_perm(&a).is_none());
    }

    #[test]
    fn two_columns_sharing_one_row_is_singular() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 1.0);
        let a = c.to_csc();
        assert_eq!(max_transversal(&a).size, 1);
        assert!(zero_free_row_perm(&a).is_none());
    }

    #[test]
    fn random_matrices_with_diagonal_always_full() {
        for seed in 0..5 {
            let a = gen::random_sparse(
                120,
                3,
                0.3,
                ValueModel {
                    diag_scale: 1.0,
                    seed,
                },
            );
            let t = max_transversal(&a);
            assert_eq!(t.size, 120, "seed {seed}");
        }
    }

    #[test]
    fn hard_bipartite_chain() {
        // Chain structure where every cheap match must be displaced:
        // col j -> rows {j+1} for j < n-1, col n-1 -> all rows.
        let n = 40;
        let mut c = CooMatrix::new(n, n);
        for j in 0..n - 1 {
            c.push(j + 1, j, 1.0);
        }
        for i in 0..n {
            c.push(i, n - 1, 1.0);
        }
        let a = c.to_csc();
        let t = max_transversal(&a);
        assert_eq!(t.size, n);
        let p = zero_free_row_perm(&a).unwrap();
        assert!(a.permute_rows(&p).has_zero_free_diagonal());
    }
}
