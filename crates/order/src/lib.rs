//! `splu-order` — matrix preprocessing orderings for the S\* pipeline.
//!
//! The paper's preprocessing (§3.1) applies, in this sequence:
//!
//! 1. **Duff's maximum transversal** ([`transversal`]) — a row permutation
//!    establishing a structurally zero-free diagonal, a precondition of the
//!    static symbolic factorization (and it "can often help reduce
//!    fill-ins");
//! 2. **Multiple minimum degree on `AᵀA`** ([`mindeg`]) — the column
//!    ordering that keeps the static overestimation ratios reasonable.
//!
//! [`rcm`] (reverse Cuthill–McKee) and the natural ordering are included as
//! ablation baselines, and [`etree`] provides elimination-tree utilities
//! (postorder, level sets) shared by the symbolic and scheduling layers.

pub mod etree;
pub mod mindeg;
pub mod rcm;
pub mod transversal;

pub use mindeg::{min_degree, MinDegreeStats};
pub use rcm::rcm;
pub use transversal::{max_transversal, zero_free_row_perm};

use splu_sparse::pattern::ata_pattern;
use splu_sparse::{CscMatrix, Perm};

/// Column-ordering strategies for the LU pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnOrdering {
    /// Leave columns in their input order.
    Natural,
    /// Minimum degree on the pattern of `AᵀA` (the paper's choice).
    MinDegreeAtA,
    /// Minimum degree on the pattern of `Aᵀ + A` — the remedy the paper
    /// notes for matrices like `memplus`, where the `AᵀA` ordering makes
    /// the static overestimation "too generous" (119× vs 2.34× there).
    MinDegreeAtPlusA,
    /// Reverse Cuthill–McKee on `Aᵀ + A` (bandwidth-reducing baseline).
    ReverseCuthillMcKee,
}

/// Compute a column permutation for `a` under the chosen strategy.
pub fn column_ordering(a: &CscMatrix, strategy: ColumnOrdering) -> Perm {
    match strategy {
        ColumnOrdering::Natural => Perm::identity(a.ncols()),
        ColumnOrdering::MinDegreeAtA => min_degree(&ata_pattern(a)).0,
        ColumnOrdering::MinDegreeAtPlusA => {
            min_degree(&splu_sparse::pattern::at_plus_a_pattern(a)).0
        }
        ColumnOrdering::ReverseCuthillMcKee => rcm(&splu_sparse::pattern::at_plus_a_pattern(a)),
    }
}

/// Full preprocessing as in the paper: row-permute for a zero-free diagonal
/// (Duff transversal), compute the column ordering on the result, and apply
/// it **symmetrically-consistently**: columns by `Q`, rows by the
/// transversal then `Q` as well (so the diagonal stays zero-free).
///
/// Returns `(permuted_matrix, row_perm, col_perm)` with
/// `B[row_perm.new_of_old(i), col_perm.new_of_old(j)] = A[i, j]`.
pub fn preprocess(a: &CscMatrix, strategy: ColumnOrdering) -> (CscMatrix, Perm, Perm) {
    assert_eq!(a.nrows(), a.ncols(), "preprocess needs a square matrix");
    let rp = zero_free_row_perm(a).expect("matrix is structurally singular");
    let a1 = a.permute_rows(&rp);
    debug_assert!(a1.has_zero_free_diagonal());
    let q = column_ordering(&a1, strategy);
    // Apply Q to both sides so the zero-free diagonal survives.
    let b = a1.permute(&q, &q);
    debug_assert!(b.has_zero_free_diagonal());
    (b, rp.then(&q), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};

    #[test]
    fn preprocess_preserves_entries_and_diagonal() {
        let a = gen::random_sparse(80, 4, 0.4, ValueModel::default());
        let (b, rp, cp) = preprocess(&a, ColumnOrdering::MinDegreeAtA);
        assert!(b.has_zero_free_diagonal());
        assert_eq!(b.nnz(), a.nnz());
        for (i, j, v) in a.iter() {
            assert_eq!(b.get(rp.new_of_old(i), cp.new_of_old(j)), v);
        }
    }

    #[test]
    fn preprocess_handles_shifted_diagonal() {
        let a = gen::shift_rows(&gen::grid2d(8, 8, 0.3, ValueModel::default()), 3);
        assert!(!a.has_zero_free_diagonal());
        let (b, _, _) = preprocess(&a, ColumnOrdering::Natural);
        assert!(b.has_zero_free_diagonal());
    }

    #[test]
    fn mindeg_reduces_fill_versus_natural_on_grid() {
        use splu_sparse::pattern::{ata_pattern, cholesky_fill_count};
        let a = gen::grid2d(16, 16, 0.2, ValueModel::default());
        let (nat, _, _) = preprocess(&a, ColumnOrdering::Natural);
        let (md, _, _) = preprocess(&a, ColumnOrdering::MinDegreeAtA);
        let (fill_nat, _) = cholesky_fill_count(&ata_pattern(&nat));
        let (fill_md, _) = cholesky_fill_count(&ata_pattern(&md));
        assert!(
            fill_md < fill_nat,
            "min degree ({fill_md}) should beat natural ({fill_nat}) on a grid"
        );
    }
}
