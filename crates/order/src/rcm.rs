//! Reverse Cuthill–McKee ordering (bandwidth-reducing baseline).
//!
//! Not used by the paper's main pipeline, but included as an ablation
//! baseline for the ordering-strategy benchmarks: the paper's future work
//! calls for "ordering strategies that minimize overestimation ratios", and
//! the `ablation_ordering` harness compares natural / RCM / minimum-degree.

use splu_sparse::pattern::Pattern;
use splu_sparse::Perm;
use std::collections::VecDeque;

/// Compute the reverse Cuthill–McKee ordering of a symmetric pattern.
///
/// Starts each connected component from a pseudo-peripheral vertex found by
/// repeated BFS, visits neighbors in increasing-degree order, and reverses
/// the final sequence.
pub fn rcm(p: &Pattern) -> Perm {
    assert_eq!(p.nrows(), p.ncols(), "rcm needs a square pattern");
    let n = p.ncols();
    let degree: Vec<usize> = (0..n)
        .map(|j| p.col(j).iter().filter(|&&i| i as usize != j).count())
        .collect();

    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut neigh: Vec<u32> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(p, start, &degree);
        // BFS from root with degree-sorted neighbor visits.
        let mut q = VecDeque::new();
        visited[root] = true;
        q.push_back(root as u32);
        while let Some(v) = q.pop_front() {
            order.push(v);
            neigh.clear();
            neigh.extend(
                p.col(v as usize)
                    .iter()
                    .copied()
                    .filter(|&w| w as usize != v as usize && !visited[w as usize]),
            );
            neigh.sort_unstable_by_key(|&w| degree[w as usize]);
            for &w in &neigh {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    q.push_back(w);
                }
            }
        }
    }
    order.reverse();
    Perm::from_old_of_new(order.into_iter().map(|v| v as usize).collect())
}

/// Find a pseudo-peripheral vertex: repeated BFS keeping the last-level
/// minimum-degree vertex until the eccentricity stops growing.
fn pseudo_peripheral(p: &Pattern, start: usize, degree: &[usize]) -> usize {
    let n = p.ncols();
    let mut root = start;
    let mut last_ecc = 0usize;
    let mut level = vec![usize::MAX; n];
    loop {
        // BFS from root
        level.iter_mut().for_each(|l| *l = usize::MAX);
        level[root] = 0;
        let mut q = VecDeque::new();
        q.push_back(root);
        let mut far = root;
        while let Some(v) = q.pop_front() {
            for &w in p.col(v) {
                let w = w as usize;
                if w != v && level[w] == usize::MAX {
                    level[w] = level[v] + 1;
                    if level[w] > level[far] || (level[w] == level[far] && degree[w] < degree[far])
                    {
                        far = w;
                    }
                    q.push_back(w);
                }
            }
        }
        if level[far] <= last_ecc {
            return root;
        }
        last_ecc = level[far];
        root = far;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_sparse::pattern::at_plus_a_pattern;

    fn bandwidth(p: &Pattern, perm: &Perm) -> usize {
        let mut bw = 0usize;
        for j in 0..p.ncols() {
            for &i in p.col(j) {
                let d = (perm.new_of_old(i as usize) as isize - perm.new_of_old(j) as isize)
                    .unsigned_abs();
                bw = bw.max(d);
            }
        }
        bw
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = gen::random_sparse(100, 4, 0.6, ValueModel::default());
        let p = at_plus_a_pattern(&a);
        let perm = rcm(&p);
        let mut seen = [false; 100];
        for i in 0..100 {
            let np = perm.new_of_old(i);
            assert!(!seen[np]);
            seen[np] = true;
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_grid() {
        // Shuffle a grid, then check RCM restores small bandwidth.
        let a = gen::grid2d(12, 12, 0.0, ValueModel::default());
        let shuffle =
            Perm::from_new_of_old((0..144).map(|i| (i * 89 + 31) % 144).collect::<Vec<_>>());
        let b = a.permute(&shuffle, &shuffle);
        let p = at_plus_a_pattern(&b);
        let ident_bw = bandwidth(&p, &Perm::identity(144));
        let rcm_bw = bandwidth(&p, &rcm(&p));
        assert!(
            rcm_bw * 3 < ident_bw,
            "rcm bandwidth {rcm_bw} vs shuffled {ident_bw}"
        );
    }

    #[test]
    fn handles_disconnected_components() {
        // two disjoint paths
        use splu_sparse::CooMatrix;
        let n = 10;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
        }
        for i in 0..4 {
            c.push(i, i + 1, 1.0);
            c.push(i + 1, i, 1.0);
        }
        for i in 5..9 {
            c.push(i, i + 1, 1.0);
            c.push(i + 1, i, 1.0);
        }
        let p = Pattern::from_csc(&c.to_csc());
        let perm = rcm(&p);
        assert_eq!(perm.len(), n);
        assert!(bandwidth(&p, &perm) <= 2);
    }
}
