//! Elimination-tree utilities shared by the symbolic and scheduling layers.

/// Sentinel for "no parent" (tree root).
pub const NO_PARENT: usize = usize::MAX;

/// Compute a postorder of a forest given by `parent` (roots have
/// [`NO_PARENT`]). Children are visited in increasing index order, so the
/// postorder is deterministic.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (increasing order because we iterate 0..n).
    let mut first_child = vec![NO_PARENT; n];
    let mut next_sibling = vec![NO_PARENT; n];
    for v in (0..n).rev() {
        let p = parent[v];
        if p != NO_PARENT {
            next_sibling[v] = first_child[p];
            first_child[p] = v;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for root in 0..n {
        if parent[root] != NO_PARENT {
            continue;
        }
        stack.push((root, false));
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                // push children (reverse to visit smallest first)
                let mut kids = Vec::new();
                let mut c = first_child[v];
                while c != NO_PARENT {
                    kids.push(c);
                    c = next_sibling[c];
                }
                for &k in kids.iter().rev() {
                    stack.push((k, false));
                }
            }
        }
    }
    order
}

/// Depth of each node in the forest (roots at depth 0).
pub fn depths(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut depth = vec![usize::MAX; n];
    for v in 0..n {
        if depth[v] != usize::MAX {
            continue;
        }
        // walk up collecting the path, then unwind
        let mut path = vec![v];
        let mut u = v;
        while parent[u] != NO_PARENT && depth[parent[u]] == usize::MAX {
            u = parent[u];
            path.push(u);
        }
        let d = if parent[u] == NO_PARENT {
            0
        } else {
            depth[parent[u]] + 1
        };
        for (i, &w) in path.iter().rev().enumerate() {
            depth[w] = d + i;
        }
    }
    depth
}

/// Height of the forest (max depth + 1; 0 for an empty forest). A proxy for
/// the critical-path length of elimination-tree parallelism.
pub fn height(parent: &[usize]) -> usize {
    depths(parent).iter().map(|&d| d + 1).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postorder_of_chain() {
        // 0 -> 1 -> 2 -> 3 (parent pointers upward)
        let parent = vec![1, 2, 3, NO_PARENT];
        assert_eq!(postorder(&parent), vec![0, 1, 2, 3]);
        assert_eq!(depths(&parent), vec![3, 2, 1, 0]);
        assert_eq!(height(&parent), 4);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        //      4
        //     / \
        //    2   3
        //   / \
        //  0   1
        let parent = vec![2, 2, 4, 4, NO_PARENT];
        let po = postorder(&parent);
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in po.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for v in 0..5 {
            if parent[v] != NO_PARENT {
                assert!(pos[v] < pos[parent[v]]);
            }
        }
        assert_eq!(po.len(), 5);
    }

    #[test]
    fn forest_with_multiple_roots() {
        let parent = vec![NO_PARENT, 0, NO_PARENT, 2];
        let po = postorder(&parent);
        assert_eq!(po.len(), 4);
        assert_eq!(depths(&parent), vec![0, 1, 0, 1]);
        assert_eq!(height(&parent), 2);
    }

    #[test]
    fn empty_forest() {
        assert!(postorder(&[]).is_empty());
        assert_eq!(height(&[]), 0);
    }
}
